"""``StartTimer`` / ``StopTimer`` — performance-instrumentation
primitives from the Paradyn suite (paper Section 6).

Both operate on a host-owned timer structure and call trusted host
functions (``getTime``; StopTimer also reports through ``logEvent``).
StartTimer starts the timer if it is not already running and bumps the
nesting counter; StopTimer decrements the counter and, when it reaches
zero, accumulates the elapsed time.  Both are safe: the checker proves
every field access non-null and permission-correct and that the trusted
calls satisfy their host preconditions."""

from __future__ import annotations

from repro.programs.base import BenchmarkProgram, PaperRow
from repro.sparc.emulator import Emulator

# struct timer { int counter; int active; int start; int total }
_TIMER_SPEC = """
type timer = struct { counter: int; active: int; start: int; total: int }
loc tm  : timer            perms rw  region T
loc tmr : timer ptr = {tm} perms rfo region T
rule [T : timer.counter, timer.active, timer.start, timer.total : rwo]
invoke %o0 = tmr
function getTime {
    returns %o0 : int = initialized perms o
    clobbers %g1
}
function logEvent {
    param %o0 : int = initialized perms o
    clobbers %g1
}
"""

START_SOURCE = """
! StartTimer(timer *t): if (t->counter == 0) { t->start = getTime();
!                                              t->active = 1; }
!                       return ++t->counter;
 1: mov %o0,%o5       ! keep the timer pointer across the call
 2: ld [%o5],%g1      ! g1 = t->counter
 3: cmp %g1,0
 4: bne 18            ! already running
 5: nop
 6: mov %o7,%g4       ! save the host return address (leaf-call idiom)
 7: call getTime      ! trusted host call
 8: nop
 9: mov %g4,%o7       ! restore the return address
10: st %o0,[%o5+8]    ! t->start = now
11: mov 1,%g2
12: st %g2,[%o5+4]    ! t->active = 1
13: ld [%o5],%g1
14: inc %g1
15: st %g1,[%o5]      ! t->counter = 1
16: retl
17: mov %g1,%o0
18: ld [%o5],%g1      ! nested start: just bump the counter
19: inc %g1
20: st %g1,[%o5]
21: ld [%o5+12],%g3   ! keep the running total warm in cache
22: retl
23: mov %g1,%o0
"""

STOP_SOURCE = """
! StopTimer(timer *t): if (--t->counter == 0) {
!     t->total += getTime() - t->start; t->active = 0;
!     logEvent(t->total); }
!   return t->counter;
 1: mov %o0,%o5       ! keep the timer pointer across the calls
 2: mov %o7,%g4       ! save the host return address
 3: ld [%o5],%g1      ! g1 = t->counter
 4: cmp %g1,0
 5: ble 33            ! not running: nothing to stop
 6: nop
 7: dec %g1
 8: st %g1,[%o5]      ! t->counter--
 9: cmp %g1,0
10: bne 30            ! still nested: done
11: nop
12: call getTime      ! now = getTime()
13: nop
14: mov %g4,%o7       ! restore the return address
15: ld [%o5+8],%g2    ! g2 = t->start
16: sub %o0,%g2,%g3   ! elapsed = now - start
17: ld [%o5+12],%g2   ! g2 = t->total
18: add %g2,%g3,%g2
19: st %g2,[%o5+12]   ! t->total += elapsed
20: clr %g3
21: st %g3,[%o5+4]    ! t->active = 0
22: ld [%o5+12],%o0
23: call logEvent     ! report the accumulated total
24: nop
25: mov %g4,%o7       ! restore the return address again
26: ld [%o5],%g1
27: mov %g1,%o0
28: retl
29: nop
30: ld [%o5],%g1      ! nested stop
31: retl
32: mov %g1,%o0
33: clr %o0           ! stopping a stopped timer is a no-op
34: retl
35: nop
"""


def _start_oracle(program) -> None:
    emulator = Emulator(
        program, host_functions={
            "getTime": lambda emu: emu.set_register("%o0", 1000)})
    base = 0x40000
    emulator.write_words(base, [0, 0, 0, 0])
    emulator.set_register("%o0", base)
    emulator.run()
    counter, active, start, total = emulator.read_words(base, 4)
    assert (counter, active, start, total) == (1, 1, 1000, 0), \
        "StartTimer wrote %r" % ((counter, active, start, total),)
    assert emulator.register_signed("%o0") == 1


def _stop_oracle(program) -> None:
    events = []
    emulator = Emulator(
        program, host_functions={
            "getTime": lambda emu: emu.set_register("%o0", 1500),
            "logEvent": lambda emu: events.append(
                emu.register_signed("%o0"))})
    base = 0x40000
    emulator.write_words(base, [1, 1, 1000, 7])   # counter=1, start=1000
    emulator.set_register("%o0", base)
    emulator.run()
    counter, active, start, total = emulator.read_words(base, 4)
    assert (counter, active, total) == (0, 0, 507), \
        "StopTimer wrote %r" % ((counter, active, start, total),)
    assert events == [507], events


START_TIMER = BenchmarkProgram(
    name="start-timer",
    paper_name="StartTimer",
    description="Paradyn start-timer instrumentation primitive.",
    source=START_SOURCE,
    spec_text=_TIMER_SPEC,
    expect_safe=True,
    paper_row=PaperRow(instructions=22, branches=1, loops=0,
                       inner_loops=0, calls=1, trusted_calls=1,
                       global_conditions=13, total_seconds=0.08),
    emulation_oracle=_start_oracle,
)

STOP_TIMER = BenchmarkProgram(
    name="stop-timer",
    paper_name="StopTimer",
    description="Paradyn stop-timer instrumentation primitive.",
    source=STOP_SOURCE,
    spec_text=_TIMER_SPEC,
    expect_safe=True,
    paper_row=PaperRow(instructions=36, branches=3, loops=0,
                       inner_loops=0, calls=2, trusted_calls=2,
                       global_conditions=17, total_seconds=0.13),
    emulation_oracle=_stop_oracle,
)
