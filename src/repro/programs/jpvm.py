"""``jPVM`` — the ``Java_jPVM_addhosts`` JNI stub (paper Section 6).

jPVM is a Java native interface to PVM; ``addhosts`` receives a Java
array of host names, converts each element to a C string through JNI
calls, collects the strings into a scratch argument vector, hands the
vector to ``pvm_addhosts``, and releases the strings.  "In the jPVM
example, we verify that calls into JNI methods and PVM library
functions are safe, i.e., they obey the safety preconditions."

This program also reproduces the paper's reported *imprecision*: "our
analysis reported that some actual parameters to the host methods and
functions are undefined [uninitialized] in the jPVM example, when they
were in fact defined" — the argument vector is summarized by a single
abstract location, the fill loop's stores are weak updates, so the
release loop's reloads look possibly-uninitialized.  The checker flags
those call arguments; they are known false alarms
(``violations_are_false_alarms`` is set)."""

from __future__ import annotations

from typing import List, Tuple

from repro.programs.base import BenchmarkProgram, PaperRow
from repro.sparc.emulator import Emulator

SPEC = """
# JNI environment and object handles are opaque host data; the scratch
# argument vector lives in host scratch space.
abstract jnienv size 4
abstract jobject size 4
loc env    : jnienv ptr = {envobj} perms rfo region J
loc envobj : jnienv                perms r   region J
loc hosts  : jobject ptr = {harr}  perms rfo region J
loc harr   : jobject               perms r   region J summary
loc aslot  : int = uninitialized   perms rwo region S summary
loc argv   : int[16] = {aslot}     perms rfo region S
rule [J : jnienv, jobject : ro]
rule [S : int : rwo]
rule [S : int[16] : rfo]
invoke %o0 = env
invoke %o1 = hosts
invoke %o2 = argv

function GetArrayLength {
    param %o0 : jnienv ptr = {envobj} perms fo
    param %o1 : jobject ptr = {harr}  perms fo
    requires %o0 != null
    returns %o0 : int = initialized perms o
    clobbers %g1 %g2
}
function GetObjectArrayElement {
    param %o0 : jnienv ptr = {envobj} perms fo
    param %o2 : int = initialized perms o
    requires %o0 != null and %o2 >= 0
    returns %o0 : int = initialized perms o
    clobbers %g1 %g2
}
function GetStringUTFChars {
    param %o0 : jnienv ptr = {envobj} perms fo
    param %o1 : int = initialized perms o
    requires %o0 != null
    returns %o0 : int = initialized perms o
    clobbers %g1 %g2
}
function ReleaseStringUTFChars {
    param %o0 : jnienv ptr = {envobj} perms fo
    param %o1 : int = initialized perms o
    requires %o0 != null
    clobbers %g1 %g2
}
function pvm_addhosts {
    param %o0 : int[16] = {aslot} perms fo
    param %o1 : int = initialized perms o
    returns %o0 : int = initialized perms o
    clobbers %g1 %g2
}
function ExceptionCheck {
    param %o0 : jnienv ptr = {envobj} perms fo
    returns %o0 : int = initialized perms o
    clobbers %g1 %g2
}
function ThrowNew {
    param %o0 : jnienv ptr = {envobj} perms fo
    param %o1 : int = initialized perms o
    clobbers %g1 %g2
}
function pvm_config {
    returns %o0 : int = initialized perms o
    clobbers %g1 %g2
}
function GetStringUTFLength {
    param %o0 : jnienv ptr = {envobj} perms fo
    param %o1 : int = initialized perms o
    requires %o0 != null
    returns %o0 : int = initialized perms o
    clobbers %g1 %g2
}
function MonitorEnter {
    param %o0 : jnienv ptr = {envobj} perms fo
    param %o1 : jobject ptr = {harr} perms fo
    requires %o0 != null
    returns %o0 : int = initialized perms o
    clobbers %g1 %g2
}
function MonitorExit {
    param %o0 : jnienv ptr = {envobj} perms fo
    param %o1 : jobject ptr = {harr} perms fo
    requires %o0 != null
    returns %o0 : int = initialized perms o
    clobbers %g1 %g2
}
function ExceptionClear {
    param %o0 : jnienv ptr = {envobj} perms fo
    clobbers %g1 %g2
}
function pvm_notify {
    param %o0 : int = initialized perms o
    returns %o0 : int = initialized perms o
    clobbers %g1 %g2
}
"""


def _generate() -> Tuple[str, Tuple[int, ...]]:
    lines: List[str] = []
    counter = [0]
    flagged: List[int] = []

    def emit(text: str, flag: bool = False) -> int:
        counter[0] += 1
        lines.append(text)
        if flag:
            flagged.append(counter[0])
        return counter[0]

    def label(name: str) -> None:
        lines.append("%s:" % name)

    emit("mov %o7,%g4            ! save the host return address")
    emit("mov %o0,%g5            ! g5 = env")
    emit("mov %o1,%g6            ! g6 = hosts")
    emit("mov %o2,%l5            ! l5 = argv base")

    # n = GetArrayLength(env, hosts); clamp to the scratch capacity.
    emit("mov %g5,%o0")
    emit("call GetArrayLength")
    emit("mov %g6,%o1")
    emit("mov %o0,%g7            ! g7 = n")
    emit("cmp %g7,16")
    emit("ble lenok")
    emit("nop")
    emit("mov 16,%g7             ! n = min(n, 16)")
    label("lenok")

    # Sanity calls the JNI discipline requires.
    emit("mov %g5,%o0")
    emit("call ExceptionCheck")
    emit("nop")
    emit("cmp %o0,0")
    emit("bne bail")
    emit("nop")
    emit("call pvm_config")
    emit("nop")
    emit("cmp %o0,0")
    emit("bl bail")
    emit("nop")

    # Zero the scratch vector first (JNI hygiene).
    emit("clr %l0")
    label("zero")
    emit("cmp %l0,64")
    emit("bge zerodone")
    emit("nop")
    emit("st %g0,[%l5+%l0]")
    emit("ba zero")
    emit("add %l0,4,%l0")
    label("zerodone")

    # The array is JNI-shared state: hold its monitor across the scan.
    emit("mov %g5,%o0")
    emit("call MonitorEnter")
    emit("mov %g6,%o1            ! (delay slot) the hosts array")

    # Fill loop: argv[i] = GetStringUTFChars(env,
    #                       GetObjectArrayElement(env, hosts, i)).
    emit("clr %l1                ! total utf length")
    emit("clr %l0                ! i = 0")
    label("fill")
    emit("cmp %l0,%g7")
    emit("bge filldone")
    emit("nop")
    emit("mov %g5,%o0")
    emit("mov %g6,%o1")
    emit("call GetObjectArrayElement")
    emit("mov %l0,%o2            ! (delay slot) index argument")
    emit("mov %o0,%o1            ! element handle")
    emit("call GetStringUTFChars")
    emit("mov %g5,%o0            ! (delay slot) env argument")
    emit("mov %o0,%l6            ! keep the utf handle")
    emit("mov %g5,%o0")
    emit("call GetStringUTFLength")
    emit("mov %l6,%o1            ! (delay slot) handle argument")
    emit("add %l1,%o0,%l1        ! accumulate total length")
    emit("sll %l0,2,%g1")
    emit("st %l6,[%l5+%g1]       ! argv[i] = utf pointer handle")
    emit("ba fill")
    emit("inc %l0")
    label("filldone")
    emit("mov %g5,%o0")
    emit("call MonitorExit")
    emit("mov %g6,%o1            ! (delay slot) release the array")

    # info = pvm_addhosts(argv, n).
    emit("mov %l5,%o0")
    emit("call pvm_addhosts")
    emit("mov %g7,%o1            ! (delay slot) count")
    emit("mov %o0,%l4            ! l4 = info")

    # Release loop: ReleaseStringUTFChars(env, argv[i]).  The reload of
    # argv[i] goes through the summarized scratch vector, so its state
    # is 'may be uninitialized' — the paper's reported false alarm.
    emit("clr %l0")
    label("release")
    emit("cmp %l0,%g7")
    emit("bge reldone")
    emit("nop")
    emit("sll %l0,2,%g1")
    emit("ld [%l5+%g1],%o1       ! argv[i] (summary: may look uninit)")
    emit("mov %g5,%o0")
    emit("call ReleaseStringUTFChars", flag=True)
    emit("nop")
    emit("ba release")
    emit("inc %l0")
    label("reldone")

    # if (info < 0) ThrowNew(env, info); three more JNI bookkeeping
    # calls round out the stub's epilogue.
    emit("cmp %l4,0")
    emit("bge finish")
    emit("nop")
    emit("mov %g5,%o0")
    emit("call ThrowNew")
    emit("mov %l4,%o1            ! (delay slot) error code")
    label("finish")
    emit("mov %g5,%o0")
    emit("call ExceptionCheck")
    emit("nop")
    emit("cmp %o0,0")
    emit("be noexc")
    emit("nop")
    emit("mov %g5,%o0")
    emit("call ThrowNew")
    emit("mov 1,%o1")
    label("noexc")
    emit("mov %g5,%o0")
    emit("call ExceptionCheck")
    emit("nop")
    emit("cmp %o0,0")
    emit("be clean")
    emit("nop")
    emit("mov %g5,%o0")
    emit("call ExceptionClear")
    emit("nop")
    label("clean")
    emit("mov %l1,%o0")
    emit("call pvm_notify        ! report the total bytes shipped")
    emit("nop")
    emit("mov %g4,%o7            ! restore the return address")
    emit("retl")
    emit("mov %l4,%o0            ! return the pvm_addhosts status")

    # Early-bail path: raise a JNI error and return failure.
    label("bail")
    emit("mov %g5,%o0")
    emit("call ThrowNew")
    emit("mov 7,%o1              ! (delay slot) error code")
    emit("mov %g4,%o7")
    emit("retl")
    emit("mov -1,%o0")

    return "\n".join(lines), tuple(flagged)


_SOURCE, _FLAGGED = _generate()


def _oracle(program) -> None:
    calls: List[str] = []
    released: List[int] = []

    def jni(name, result=None):
        def handler(emu):
            calls.append(name)
            if name == "GetArrayLength":
                emu.set_register("%o0", 3)
            elif name == "GetObjectArrayElement":
                emu.set_register("%o0", 0x100 + emu.register("%o2"))
            elif name == "GetStringUTFChars":
                emu.set_register("%o0", emu.register("%o1") + 0x1000)
            elif name == "ReleaseStringUTFChars":
                released.append(emu.register_signed("%o1"))
            elif name == "pvm_addhosts":
                emu.set_register("%o0", emu.register("%o1"))
            elif name == "GetStringUTFLength":
                emu.set_register("%o0", 11)
            elif name in ("ExceptionCheck", "pvm_config",
                          "MonitorEnter", "MonitorExit", "pvm_notify"):
                emu.set_register("%o0", 0)
        return handler

    names = ["GetArrayLength", "GetObjectArrayElement",
             "GetStringUTFChars", "ReleaseStringUTFChars",
             "pvm_addhosts", "ExceptionCheck", "ThrowNew", "pvm_config",
             "GetStringUTFLength", "MonitorEnter", "MonitorExit",
             "ExceptionClear", "pvm_notify"]
    emulator = Emulator(program,
                        host_functions={n: jni(n) for n in names})
    emulator.set_register("%o0", 0xA0000)   # env
    emulator.set_register("%o1", 0xA1000)   # hosts
    emulator.set_register("%o2", 0xA2000)   # argv scratch
    emulator.run()
    assert released == [0x1100, 0x1101, 0x1102], released
    assert emulator.register_signed("%o0") == 3
    assert calls.count("GetStringUTFChars") == 3


PROGRAM = BenchmarkProgram(
    name="jpvm",
    paper_name="jPVM",
    description="Java_jPVM_addhosts JNI stub: 20+ trusted host calls "
                "with preconditions.",
    source=_SOURCE,
    spec_text=SPEC,
    expect_safe=False,
    expected_violation_indices=_FLAGGED,
    expected_violation_categories=("trusted-call",),
    violations_are_false_alarms=True,
    paper_row=PaperRow(instructions=157, branches=12, loops=3,
                       inner_loops=0, calls=21, trusted_calls=21,
                       global_conditions=57, total_seconds=5.25),
    emulation_oracle=_oracle,
)
