"""The RV32I subset accepted by the second frontend.

A deliberately small slice of RV32I — integer register/immediate
arithmetic, loads/stores, conditional branches, ``lui``, ``jal``, and
``jalr`` — enough to compile the paper's array-manipulating extensions
for a second machine and demonstrate that the analysis core is
architecture-neutral.  Branches compare two registers directly (RISC-V
has no condition codes), which exercises the general
:class:`~repro.cfg.graph.BranchCondition` form; there are no delay
slots.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

#: R-type and I-type ALU mnemonics (shared name set; ``op`` selects).
ALU_OPS: Tuple[str, ...] = (
    "add", "sub", "and", "or", "xor", "sll", "srl", "sra",
    "slt", "sltu",
)
ALU_IMM_OPS: Tuple[str, ...] = (
    "addi", "andi", "ori", "xori", "slli", "srli", "srai",
    "slti", "sltiu",
)

#: Memory access width and signedness by mnemonic.
MEM_SIZE: Dict[str, int] = {
    "lb": 1, "lbu": 1, "lh": 2, "lhu": 2, "lw": 4,
    "sb": 1, "sh": 2, "sw": 4,
}
LOAD_SIGNED: Dict[str, bool] = {
    "lb": True, "lbu": False, "lh": True, "lhu": False, "lw": True,
}

#: Branch mnemonic → relation between rs1 and rs2 on the taken edge.
#: Unsigned relations map to their signed counterparts — exact for
#: values in [0, 2³¹), the same modeling assumption the SPARC frontend
#: records for ``bgeu``/``blu``.
BRANCH_RELATION: Dict[str, str] = {
    "beq": "==", "bne": "!=", "blt": "<", "bge": ">=",
    "bltu": "<", "bgeu": ">=",
}

BRANCH_OPS: Tuple[str, ...] = tuple(BRANCH_RELATION)


@dataclass(frozen=True)
class RvInstruction:
    """One decoded/assembled RV32I instruction.

    Register fields hold canonical ABI names; ``target`` is the
    one-based index of a branch/jal destination instruction.
    """

    op: str
    rd: Optional[str] = None
    rs1: Optional[str] = None
    rs2: Optional[str] = None
    imm: int = 0
    target: Optional[int] = None
    target_label: Optional[str] = None
    index: int = 0
    label: Optional[str] = None
    source_text: str = ""

    def with_index(self, index: int) -> "RvInstruction":
        return replace(self, index=index)

    # -- structure ----------------------------------------------------------

    @property
    def is_branch(self) -> bool:
        return self.op in BRANCH_RELATION

    @property
    def is_control_transfer(self) -> bool:
        return self.is_branch or self.op in ("jal", "jalr")

    # -- rendering ----------------------------------------------------------

    def render(self, canonical: bool = False) -> str:
        if self.source_text and not canonical:
            return self.source_text
        op = self.op
        if op in ALU_OPS:
            return "%s %s,%s,%s" % (op, self.rd, self.rs1, self.rs2)
        if op in ALU_IMM_OPS:
            return "%s %s,%s,%d" % (op, self.rd, self.rs1, self.imm)
        if op in LOAD_SIGNED:
            return "%s %s,%d(%s)" % (op, self.rd, self.imm, self.rs1)
        if op in ("sb", "sh", "sw"):
            return "%s %s,%d(%s)" % (op, self.rs2, self.imm, self.rs1)
        if op in BRANCH_RELATION:
            where = self.target_label or str(self.target)
            return "%s %s,%s,%s" % (op, self.rs1, self.rs2, where)
        if op == "lui":
            return "lui %s,%d" % (self.rd, self.imm)
        if op == "jal":
            where = self.target_label or str(self.target)
            return "jal %s,%s" % (self.rd, where)
        if op == "jalr":
            return "jalr %s,%d(%s)" % (self.rd, self.imm, self.rs1)
        return op

    def __str__(self) -> str:
        return self.render()
