"""A concrete RV32I emulator for the supported instruction subset.

The mirror image of :mod:`repro.sparc.emulator` for the second
frontend: benchmark programs and fuzzer-generated programs execute
concretely here, and their observable results are compared against the
SPARC run of the same program sketch — end-to-end evidence that both
assemblers, both sets of abstract semantics, and the differential
fuzzing oracle agree on what the instructions mean.

Faithfully modeled: 32-bit two's-complement arithmetic, x0 hard-wired
to zero, little-endian byte-addressable memory, and ``jal``/``jalr``
linkage.  There are no delay slots and no condition codes — branches
compare two registers directly.  Host functions can be registered so
programs that call into the trusted host run concretely, exactly as on
the SPARC side.

Both emulators share the strict-region protocol: once
:meth:`Emulator.add_region` has been called, every program-level
load/store outside a registered region (or store to a read-only one)
raises a precise :class:`~repro.errors.RegionViolation` instead of
silently reading zeros or growing memory.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import EmulationError, RegionViolation
from repro.riscv import registers
from repro.riscv.isa import (
    ALU_IMM_OPS, ALU_OPS, BRANCH_RELATION, LOAD_SIGNED, MEM_SIZE,
    RvInstruction,
)
from repro.riscv.program import RvProgram

#: Address at which instruction 1 lives (matches the SPARC emulator).
CODE_BASE = 0x10000
#: Jumping here terminates execution (the host's return continuation).
EXIT_ADDRESS = 0xDEAD0000
#: Calls to external (host) symbols dispatch through addresses here.
EXTERNAL_BASE = 0xE0000000

_MASK32 = 0xFFFFFFFF


def _to_signed(value: int) -> int:
    value &= _MASK32
    return value - 0x100000000 if value & 0x80000000 else value


def _to_unsigned(value: int) -> int:
    return value & _MASK32


class Emulator:
    """Concrete interpreter for an assembled :class:`RvProgram`.

    Typical use::

        emu = Emulator(program)
        emu.set_register("a0", array_address)
        emu.set_register("a1", length)
        emu.write_words(array_address, values)
        emu.run()
        result = emu.register("a0")
    """

    def __init__(self, program: RvProgram,
                 host_functions: Optional[Dict[str, Callable]] = None,
                 max_steps: int = 1_000_000):
        self.program = program
        self.max_steps = max_steps
        self.memory: Dict[int, int] = {}
        self.x: List[int] = [0] * 32
        self.steps = 0
        #: Registered data regions ``(base, size, writable)``; same
        #: strict-mode protocol as the SPARC emulator (see its
        #: ``regions`` attribute).
        self.regions: List[Tuple[int, int, bool]] = []
        #: Optional observation hook ``hook(address, size, kind,
        #: index)`` called before every program-level memory access.
        self.memory_check: Optional[Callable[[int, int, str, int],
                                             None]] = None
        self.host_functions: Dict[int, Callable[["Emulator"], None]] = {}
        self._external_handlers: Dict[int, Callable[["Emulator"], None]] = {}
        self._external_addresses: Dict[str, int] = {}
        for label, fn in (host_functions or {}).items():
            if label in program.labels:
                self.host_functions[program.label_index(label)] = fn
            else:
                address = EXTERNAL_BASE + 4 * len(self._external_addresses)
                self._external_addresses[label] = address
                self._external_handlers[address] = fn
        # Arrange for the top-level `ret` to exit cleanly.
        self.set_register("ra", EXIT_ADDRESS)
        self.set_register("sp", 0x7F0000)

    # -- register access ------------------------------------------------------

    def read_reg(self, number: int) -> int:
        return 0 if number == 0 else self.x[number]

    def write_reg(self, number: int, value: int) -> None:
        if number:
            self.x[number] = _to_unsigned(value)

    def register(self, name: str) -> int:
        """Read a register by ABI name (unsigned 32-bit value)."""
        return self.read_reg(registers.number_of(name))

    def register_signed(self, name: str) -> int:
        """Read a register by ABI name as a signed 32-bit value."""
        return _to_signed(self.register(name))

    def set_register(self, name: str, value: int) -> None:
        """Write a register by ABI name."""
        self.write_reg(registers.number_of(name), value)

    # -- memory access ---------------------------------------------------------

    def read_memory(self, address: int, size: int, signed: bool) -> int:
        value = 0
        for i in reversed(range(size)):  # little-endian
            value = (value << 8) | self.memory.get(address + i, 0)
        if signed:
            sign = 1 << (size * 8 - 1)
            if value & sign:
                value -= 1 << (size * 8)
        return value

    def write_memory(self, address: int, value: int, size: int) -> None:
        value &= (1 << (size * 8)) - 1
        for i in range(size):
            self.memory[address + i] = (value >> (i * 8)) & 0xFF

    def write_words(self, address: int, values) -> None:
        """Write a sequence of 32-bit words starting at *address*."""
        for i, value in enumerate(values):
            self.write_memory(address + 4 * i, value, 4)

    def read_words(self, address: int, count: int) -> List[int]:
        """Read *count* signed 32-bit words starting at *address*."""
        return [self.read_memory(address + 4 * i, 4, signed=True)
                for i in range(count)]

    def read_bytes(self, address: int, count: int) -> bytes:
        return bytes(self.memory.get(address + i, 0)
                     for i in range(count))

    def write_bytes(self, address: int, data: bytes) -> None:
        for i, byte in enumerate(data):
            self.memory[address + i] = byte

    # -- data regions (strict mode) ---------------------------------------------

    def add_region(self, base: int, size: int,
                   writable: bool = True) -> None:
        """Register a data region; see :attr:`regions`."""
        self.regions.append((base, size, writable))

    def _check_access(self, address: int, size: int, kind: str,
                      index: int) -> None:
        if self.memory_check is not None:
            self.memory_check(address, size, kind, index)
        if not self.regions:
            return
        for base, length, writable in self.regions:
            if base <= address and address + size <= base + length:
                if kind == "store" and not writable:
                    break
                return
        raise RegionViolation(address, size, kind, index)

    # -- address/index conversion ----------------------------------------------

    @staticmethod
    def address_of(index: int) -> int:
        return CODE_BASE + (index - 1) * 4

    @staticmethod
    def index_of(address: int) -> int:
        return (address - CODE_BASE) // 4 + 1

    # -- execution ---------------------------------------------------------------

    def run(self, entry: int = 1) -> int:
        """Run from instruction index *entry* until the top-level
        return.  Returns the number of instructions executed."""
        pc = self.address_of(entry)
        start = self.steps
        while pc != EXIT_ADDRESS:
            if self.steps - start >= self.max_steps:
                raise EmulationError("exceeded %d steps" % self.max_steps)
            external = self._external_handlers.get(pc)
            if external is not None:
                external(self)
                pc = _to_unsigned(self.register("ra"))
                continue
            index = self.index_of(pc)
            host = self.host_functions.get(index)
            if host is not None:
                host(self)
                # Simulate the callee's "ret".
                pc = _to_unsigned(self.register("ra"))
                continue
            if not 1 <= index <= len(self.program):
                raise EmulationError("execution left the program at "
                                     "0x%x" % pc)
            inst = self.program.instruction(index)
            pc = self._execute(inst, pc)
            self.steps += 1
        return self.steps - start

    def _execute(self, inst: RvInstruction, pc: int) -> int:
        """Execute one instruction; return the next pc."""
        op = inst.op
        if op in ALU_OPS:
            a = self.read_reg(registers.number_of(inst.rs1))
            b = self.read_reg(registers.number_of(inst.rs2))
            self.write_reg(registers.number_of(inst.rd),
                           self._alu(op, a, b, inst))
            return pc + 4
        if op in ALU_IMM_OPS:
            a = self.read_reg(registers.number_of(inst.rs1))
            base = {"addi": "add", "andi": "and", "ori": "or",
                    "xori": "xor", "slli": "sll", "srli": "srl",
                    "srai": "sra", "slti": "slt", "sltiu": "sltu"}[op]
            self.write_reg(registers.number_of(inst.rd),
                           self._alu(base, a, inst.imm, inst))
            return pc + 4
        if op == "lui":
            self.write_reg(registers.number_of(inst.rd),
                           (inst.imm << 12) & _MASK32)
            return pc + 4
        if op in LOAD_SIGNED:
            address = _to_unsigned(
                self.read_reg(registers.number_of(inst.rs1)) + inst.imm)
            size = MEM_SIZE[op]
            self._check_alignment(address, size, inst)
            self._check_access(address, size, "load", inst.index)
            value = self.read_memory(address, size, LOAD_SIGNED[op])
            self.write_reg(registers.number_of(inst.rd), value)
            return pc + 4
        if op in ("sb", "sh", "sw"):
            address = _to_unsigned(
                self.read_reg(registers.number_of(inst.rs1)) + inst.imm)
            size = MEM_SIZE[op]
            self._check_alignment(address, size, inst)
            self._check_access(address, size, "store", inst.index)
            self.write_memory(address,
                              self.read_reg(registers.number_of(
                                  inst.rs2)), size)
            return pc + 4
        if op in BRANCH_RELATION:
            if self._branch_taken(inst):
                return self.address_of(inst.target)
            return pc + 4
        if op == "jal":
            self.write_reg(registers.number_of(inst.rd), pc + 4)
            if inst.target == 0:  # external (host) symbol
                label = inst.target_label or ""
                address = self._external_addresses.get(label)
                if address is None:
                    raise EmulationError(
                        "call to external %r without a registered host "
                        "function at instruction %d"
                        % (label, inst.index))
                return address
            return self.address_of(inst.target)
        if op == "jalr":
            target = _to_unsigned(
                self.read_reg(registers.number_of(inst.rs1))
                + inst.imm) & ~1
            self.write_reg(registers.number_of(inst.rd), pc + 4)
            return target
        raise EmulationError("cannot execute %r" % (inst,))

    # -- instruction helpers -------------------------------------------------------

    def _alu(self, op: str, a: int, b: int, inst: RvInstruction) -> int:
        if op == "add":
            return _to_unsigned(a + b)
        if op == "sub":
            return _to_unsigned(a - b)
        if op == "and":
            return _to_unsigned(a & b)
        if op == "or":
            return _to_unsigned(a | b)
        if op == "xor":
            return _to_unsigned(a ^ b)
        if op == "sll":
            return (_to_unsigned(a) << (b & 31)) & _MASK32
        if op == "srl":
            return _to_unsigned(a) >> (b & 31)
        if op == "sra":
            return _to_unsigned(_to_signed(a) >> (b & 31))
        if op == "slt":
            return 1 if _to_signed(a) < _to_signed(b) else 0
        if op == "sltu":
            return 1 if _to_unsigned(a) < _to_unsigned(b) else 0
        raise EmulationError("cannot execute ALU op %r at instruction "
                             "%d" % (op, inst.index))

    def _check_alignment(self, address: int, size: int,
                         inst: RvInstruction) -> None:
        if size > 1 and address % size:
            raise EmulationError(
                "alignment trap: %s accesses 0x%x (size %d) at "
                "instruction %d" % (inst.op, address, size, inst.index))

    def _branch_taken(self, inst: RvInstruction) -> bool:
        a = self.read_reg(registers.number_of(inst.rs1))
        b = self.read_reg(registers.number_of(inst.rs2))
        op = inst.op
        if op == "beq":
            return a == b
        if op == "bne":
            return a != b
        if op == "blt":
            return _to_signed(a) < _to_signed(b)
        if op == "bge":
            return _to_signed(a) >= _to_signed(b)
        if op == "bltu":
            return _to_unsigned(a) < _to_unsigned(b)
        if op == "bgeu":
            return _to_unsigned(a) >= _to_unsigned(b)
        raise EmulationError("cannot execute branch %r" % (inst,))
