"""The RV32I frontend: a second machine backend for the checker."""

from repro.riscv.assembler import assemble, Assembler
from repro.riscv.decoder import decode_instruction, decode_program
from repro.riscv.isa import RvInstruction
from repro.riscv.lower import RISCV_ARCH, lower_instruction, lower_program
from repro.riscv.program import RvProgram

__all__ = [
    "Assembler", "RISCV_ARCH", "RvInstruction", "RvProgram", "assemble",
    "decode_instruction", "decode_program", "lower_instruction",
    "lower_program",
]
