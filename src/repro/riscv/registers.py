"""RV32I register names.

The analysis identifies registers by their ABI names (``zero``, ``ra``,
``sp``, ``a0`` …), the form compilers and disassemblers emit.  Raw
``x0``–``x31`` names and the ``fp`` alias are accepted on input and
canonicalized.
"""

from __future__ import annotations

from typing import Dict, List

#: ABI names in architectural order (x0 .. x31).
REGISTER_NAMES: List[str] = [
    "zero", "ra", "sp", "gp", "tp",
    "t0", "t1", "t2",
    "s0", "s1",
    "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7",
    "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
    "t3", "t4", "t5", "t6",
]

_ALIASES: Dict[str, str] = {"fp": "s0"}
_ALIASES.update({"x%d" % i: name for i, name in enumerate(REGISTER_NAMES)})

NUMBERS: Dict[str, int] = {name: i for i, name in enumerate(REGISTER_NAMES)}


def canonical(name: str) -> str:
    """Canonical ABI name for *name* (raises KeyError when unknown)."""
    name = name.strip().lower()
    name = _ALIASES.get(name, name)
    if name not in NUMBERS:
        raise KeyError(name)
    return name


def name_of(number: int) -> str:
    return REGISTER_NAMES[number]


def number_of(name: str) -> int:
    return NUMBERS[canonical(name)]
