"""Container for an assembled/decoded RV32I program.

Mirrors :class:`repro.sparc.program.Program`: one-based instruction
indices, a label map, and a ``lower()`` method producing the
architecture-neutral :class:`~repro.ir.program.MachineProgram` the
analysis consumes.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.riscv.isa import RvInstruction


class RvProgram:
    """An RV32I program: instructions plus label bindings."""

    def __init__(self, instructions: List[RvInstruction],
                 labels: Optional[Dict[str, int]] = None,
                 name: str = "untrusted"):
        self.name = name
        self.instructions: List[RvInstruction] = [
            inst.with_index(i + 1) for i, inst in enumerate(instructions)
        ]
        self.labels: Dict[str, int] = dict(labels or {})

    # -- basic access --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[RvInstruction]:
        return iter(self.instructions)

    def instruction(self, index: int) -> RvInstruction:
        """Return the instruction at one-based *index*."""
        if not 1 <= index <= len(self.instructions):
            raise IndexError("instruction index %d out of range 1..%d"
                             % (index, len(self.instructions)))
        return self.instructions[index - 1]

    def label_index(self, label: str) -> int:
        """Return the one-based index bound to *label*."""
        return self.labels[label]

    def label_at(self, index: int) -> Optional[str]:
        """Return a label bound to *index*, if any."""
        for name, bound in self.labels.items():
            if bound == index:
                return name
        return None

    def lower(self):
        """Lower to the architecture-neutral IR consumed by the
        analysis (a :class:`~repro.ir.program.MachineProgram`)."""
        from repro.riscv.lower import lower_program
        return lower_program(self)

    # -- rendering -----------------------------------------------------------

    def listing(self, canonical: bool = False) -> str:
        """Render a numbered assembly listing, paper-figure style."""
        width = len(str(len(self.instructions)))
        lines = []
        for inst in self.instructions:
            label = self.label_at(inst.index)
            if label is not None and not label.isdigit():
                lines.append("%s:" % label)
            lines.append("%*d: %s" % (width, inst.index,
                                      inst.render(canonical=canonical)))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return "RvProgram(%r, %d instructions)" % (self.name,
                                                   len(self.instructions))
