"""Lowering: RV32I instructions to the architecture-neutral IR.

Each :class:`~repro.riscv.isa.RvInstruction` maps to exactly one
:class:`~repro.ir.ops.MachineOp`; the raw instruction is kept as a
back-pointer for diagnostics and listings.  Lowering canonicalizes the
hardwired zero register exactly like the SPARC frontend does for
``%g0``: reads of ``zero`` become ``ConstOp(0)``, writes to it a
discarded destination.  Register copies (``mv``, i.e. ``addi rd,rs,0``,
and ``add rd,zero,rs``) are normalized to the IR's canonical move form
``Assign(OR, ConstOp(0), RegOp(rs))`` so typestates flow through them.

RISC-V has no condition codes and no delay slots: branches carry their
two register operands directly on the :class:`CondBranch` and every
control transfer has ``delay_slots=0``.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.arch import ArchInfo
from repro.ir.frontend import Frontend
from repro.ir.ops import (
    AddrExpr, Assign, BinOp, Call, CondBranch, ConstOp, IndirectJump,
    Load, MachineOp, Nop, Operand, RegOp, SetConst, Store, Unsupported,
)
from repro.ir.program import MachineProgram
from repro.riscv.isa import (
    BRANCH_RELATION, LOAD_SIGNED, MEM_SIZE, RvInstruction,
)
from repro.riscv.program import RvProgram
from repro.riscv.registers import REGISTER_NAMES

#: Architecture facts the analysis core needs about RV32I.
RISCV_ARCH = ArchInfo(
    name="riscv",
    registers=tuple(REGISTER_NAMES),
    link_register="ra",
    constant_registers=("zero",),
    protected_registers=("sp",),
    stack_align=16,
)

#: R-type / I-type mnemonics to IR operators (``slt``/``sltu`` and
#: their immediate forms have no linear semantics and stay unsupported).
_BINOP = {
    "add": BinOp.ADD, "addi": BinOp.ADD,
    "sub": BinOp.SUB,
    "and": BinOp.AND, "andi": BinOp.AND,
    "or": BinOp.OR, "ori": BinOp.OR,
    "xor": BinOp.XOR, "xori": BinOp.XOR,
    "sll": BinOp.SLL, "slli": BinOp.SLL,
    "srl": BinOp.SRL, "srli": BinOp.SRL,
    "sra": BinOp.SRA, "srai": BinOp.SRA,
}

_IMM_OPS = ("addi", "andi", "ori", "xori", "slli", "srli", "srai")


def _reg(name: Optional[str]) -> Operand:
    if name is None or name == "zero":
        return ConstOp(0)
    return RegOp(name)


def _dest(name: Optional[str]) -> Optional[str]:
    if name is None or name == "zero":
        return None
    return name


def _move(dest: Optional[str], src: str, common) -> MachineOp:
    if dest is None:
        return Nop(**common)
    return Assign(dest=dest, op=BinOp.OR, src1=ConstOp(0),
                  src2=RegOp(src), **common)


def _lui_value(imm20: int) -> int:
    value = (imm20 & 0xFFFFF) << 12
    return value - (1 << 32) if value >= (1 << 31) else value


def lower_instruction(inst: RvInstruction) -> MachineOp:
    """Map one RV32I instruction to exactly one IR op."""
    common = dict(index=inst.index, raw=inst, text=inst.render())
    op = inst.op
    if op == "addi":
        dest = _dest(inst.rd)
        if inst.rs1 == "zero":
            if dest is None:
                return Nop(**common)  # canonical nop
            return SetConst(dest=dest, value=inst.imm, **common)
        if inst.imm == 0:
            return _move(dest, inst.rs1, common)  # mv rd,rs
    if op == "add" and inst.rs1 == "zero" and inst.rs2 != "zero":
        return _move(_dest(inst.rd), inst.rs2, common)
    if op in _BINOP:
        src2 = (ConstOp(inst.imm) if op in _IMM_OPS
                else _reg(inst.rs2))
        return Assign(dest=_dest(inst.rd), op=_BINOP[op],
                      src1=_reg(inst.rs1), src2=src2, **common)
    if op == "lui":
        dest = _dest(inst.rd)
        if dest is None:
            return Nop(**common)
        return SetConst(dest=dest, value=_lui_value(inst.imm), **common)
    if op in LOAD_SIGNED:
        return Load(dest=_dest(inst.rd),
                    addr=AddrExpr(base=inst.rs1, offset=inst.imm),
                    width=MEM_SIZE[op], signed=LOAD_SIGNED[op], **common)
    if op in ("sb", "sh", "sw"):
        return Store(src=_reg(inst.rs2),
                     addr=AddrExpr(base=inst.rs1, offset=inst.imm),
                     width=MEM_SIZE[op], **common)
    if op in BRANCH_RELATION:
        return CondBranch(relation=BRANCH_RELATION[op],
                          lhs=_reg(inst.rs1), rhs=_reg(inst.rs2),
                          target=inst.target,
                          target_label=inst.target_label,
                          delay_slots=0, **common)
    if op == "jal":
        if _dest(inst.rd) is None:
            return CondBranch(relation=None, target=inst.target,
                              target_label=inst.target_label,
                              unconditional=True, delay_slots=0,
                              **common)
        return Call(target=inst.target if inst.target is not None else 0,
                    target_label=inst.target_label,
                    link=inst.rd, delay_slots=0, **common)
    if op == "jalr":
        is_return = (_dest(inst.rd) is None and inst.rs1 == "ra"
                     and inst.imm == 0)
        return IndirectJump(base=inst.rs1, offset=inst.imm,
                            link=_dest(inst.rd), is_return=is_return,
                            delay_slots=0, **common)
    return Unsupported(reason="no abstract semantics for %r" % (inst,),
                       **common)


def lower_program(program: RvProgram) -> MachineProgram:
    """Lower an assembled/decoded RV32I program to the IR."""
    ops = [lower_instruction(inst) for inst in program]
    return MachineProgram(ops, labels=program.labels,
                          name=program.name, arch=RISCV_ARCH)


# -- frontend registration ---------------------------------------------------


def _assemble(text: str, name: str = "untrusted") -> MachineProgram:
    from repro.riscv.assembler import assemble
    return lower_program(assemble(text, name=name))


def _decode(blob, name: str = "decoded") -> MachineProgram:
    from repro.riscv.decoder import decode_program
    return lower_program(decode_program(blob, name=name))


FRONTEND = Frontend(name="riscv", arch=RISCV_ARCH,
                    assemble=_assemble, decode=_decode)
