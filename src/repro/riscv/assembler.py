"""A two-pass assembler for the RV32I subset.

Accepted syntax is the standard GNU dialect:

* one instruction per line; ``#``, ``//``, and ``;`` start comments;
* optional labels (``name:``, including numeric line labels);
* branch/jump targets may be labels or absolute one-based instruction
  numbers (the style of the paper's figures);
* the usual pseudo-instructions are expanded: ``nop``, ``mv``, ``li``,
  ``ret``, ``j``, ``call``, ``beqz``/``bnez``.

Pass one collects labels and raw statements; pass two resolves targets
and produces a :class:`~repro.riscv.program.RvProgram`.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.errors import AssemblyError
from repro.riscv import registers
from repro.riscv.isa import (
    ALU_IMM_OPS, ALU_OPS, BRANCH_RELATION, LOAD_SIGNED, MEM_SIZE,
    RvInstruction,
)
from repro.riscv.program import RvProgram

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*|\d+):")
_MEM_RE = re.compile(r"^(-?\w+)\((\w+)\)$")
_SIMM12_MIN, _SIMM12_MAX = -2048, 2047


def assemble(text: str, name: str = "untrusted") -> RvProgram:
    """Assemble RV32I assembly *text* into an :class:`RvProgram`."""
    return Assembler(text, name=name).assemble()


class _Statement:
    def __init__(self, mnemonic: str, operands: List[str], line: int,
                 text: str):
        self.mnemonic = mnemonic
        self.operands = operands
        self.line = line
        self.text = text


class Assembler:
    """Two-pass assembler; see module docstring for the dialect."""

    def __init__(self, text: str, name: str = "untrusted"):
        self._text = text
        self._name = name

    def assemble(self) -> RvProgram:
        statements, labels = self._parse_statements()
        instructions: List[RvInstruction] = []
        label_indices: Dict[str, int] = {}
        pending = list(labels)
        position = 0
        for stmt in statements:
            while pending and pending[0][1] == position:
                label_indices[pending.pop(0)[0]] = len(instructions) + 1
            for inst in self._expand(stmt):
                instructions.append(inst)
            position += 1
        while pending:
            label_indices[pending.pop(0)[0]] = len(instructions) + 1
        resolved = [self._resolve_target(inst, label_indices,
                                         len(instructions))
                    for inst in instructions]
        return RvProgram(resolved, labels=label_indices, name=self._name)

    # -- pass one ------------------------------------------------------------

    def _parse_statements(self) -> Tuple[List[_Statement],
                                         List[Tuple[str, int]]]:
        statements: List[_Statement] = []
        labels: List[Tuple[str, int]] = []
        for lineno, raw in enumerate(self._text.splitlines(), start=1):
            line = re.split(r"#|//|;", raw, 1)[0].strip()
            while True:
                match = _LABEL_RE.match(line)
                if not match:
                    break
                labels.append((match.group(1), len(statements)))
                line = line[match.end():].strip()
            if not line or line.startswith("."):
                continue
            mnemonic, __, rest = line.partition(" ")
            operands = [o.strip() for o in rest.strip().split(",")
                        if o.strip()]
            statements.append(_Statement(mnemonic.strip().lower(),
                                         operands, lineno, line))
        return statements, labels

    # -- pass two ------------------------------------------------------------

    def _expand(self, stmt: _Statement) -> List[RvInstruction]:
        op = stmt.mnemonic
        try:
            return self._expand_checked(stmt, op)
        except AssemblyError:
            raise
        except (KeyError, ValueError, IndexError) as exc:
            raise AssemblyError("cannot assemble %r (%s)"
                                % (stmt.text, exc), line=stmt.line)

    def _expand_checked(self, stmt: _Statement,
                        op: str) -> List[RvInstruction]:
        ops = stmt.operands
        text = stmt.text
        if op == "nop":
            return [RvInstruction(op="addi", rd="zero", rs1="zero",
                                  imm=0, source_text=text)]
        if op == "mv":
            return [RvInstruction(op="addi", rd=_reg(ops[0]),
                                  rs1=_reg(ops[1]), imm=0,
                                  source_text=text)]
        if op == "li":
            return self._expand_li(ops, stmt)
        if op == "ret":
            return [RvInstruction(op="jalr", rd="zero", rs1="ra", imm=0,
                                  source_text=text)]
        if op == "j":
            return [RvInstruction(op="jal", rd="zero",
                                  target_label=ops[0], source_text=text)]
        if op == "call":
            return [RvInstruction(op="jal", rd="ra",
                                  target_label=ops[0], source_text=text)]
        if op in ("beqz", "bnez"):
            return [RvInstruction(op="beq" if op == "beqz" else "bne",
                                  rs1=_reg(ops[0]), rs2="zero",
                                  target_label=ops[1], source_text=text)]
        if op in ALU_OPS:
            return [RvInstruction(op=op, rd=_reg(ops[0]),
                                  rs1=_reg(ops[1]), rs2=_reg(ops[2]),
                                  source_text=text)]
        if op in ALU_IMM_OPS:
            return [RvInstruction(op=op, rd=_reg(ops[0]),
                                  rs1=_reg(ops[1]),
                                  imm=self._imm(ops[2], stmt),
                                  source_text=text)]
        if op in LOAD_SIGNED:
            offset, base = _mem(ops[1])
            return [RvInstruction(op=op, rd=_reg(ops[0]), rs1=base,
                                  imm=offset, source_text=text)]
        if op in MEM_SIZE:  # stores
            offset, base = _mem(ops[1])
            return [RvInstruction(op=op, rs2=_reg(ops[0]), rs1=base,
                                  imm=offset, source_text=text)]
        if op in BRANCH_RELATION:
            return [RvInstruction(op=op, rs1=_reg(ops[0]),
                                  rs2=_reg(ops[1]), target_label=ops[2],
                                  source_text=text)]
        if op == "lui":
            return [RvInstruction(op="lui", rd=_reg(ops[0]),
                                  imm=int(ops[1], 0), source_text=text)]
        if op == "jal":
            if len(ops) == 1:  # "jal target" links through ra
                return [RvInstruction(op="jal", rd="ra",
                                      target_label=ops[0],
                                      source_text=text)]
            return [RvInstruction(op="jal", rd=_reg(ops[0]),
                                  target_label=ops[1], source_text=text)]
        if op == "jalr":
            if len(ops) == 1:  # "jalr rs" == jalr ra,0(rs)
                return [RvInstruction(op="jalr", rd="ra",
                                      rs1=_reg(ops[0]), imm=0,
                                      source_text=text)]
            offset, base = _mem(ops[1])
            return [RvInstruction(op="jalr", rd=_reg(ops[0]), rs1=base,
                                  imm=offset, source_text=text)]
        raise AssemblyError("unknown mnemonic %r" % op, line=stmt.line)

    def _expand_li(self, ops: List[str],
                   stmt: _Statement) -> List[RvInstruction]:
        rd = _reg(ops[0])
        value = int(ops[1], 0)
        if _SIMM12_MIN <= value <= _SIMM12_MAX:
            return [RvInstruction(op="addi", rd=rd, rs1="zero",
                                  imm=value, source_text=stmt.text)]
        upper = (value + 0x800) >> 12
        lower = value - (upper << 12)
        out = [RvInstruction(op="lui", rd=rd, imm=upper & 0xFFFFF,
                             source_text=stmt.text)]
        if lower:
            out.append(RvInstruction(op="addi", rd=rd, rs1=rd, imm=lower,
                                     source_text=stmt.text))
        return out

    def _imm(self, text: str, stmt: _Statement) -> int:
        value = int(text, 0)
        if not _SIMM12_MIN <= value <= _SIMM12_MAX:
            raise AssemblyError("immediate %d out of simm12 range"
                                % value, line=stmt.line)
        return value

    def _resolve_target(self, inst: RvInstruction,
                        labels: Dict[str, int],
                        count: int) -> RvInstruction:
        label = inst.target_label
        if label is None:
            return inst
        if label in labels:
            index = labels[label]
        elif re.fullmatch(r"\d+", label):
            index = int(label)
        elif inst.op == "jal":
            # A call to a label not defined in the untrusted code is an
            # *external* call (to the trusted host).  Target index 0
            # marks externals, as in the SPARC frontend.
            from dataclasses import replace
            return replace(inst, target=0)
        else:
            raise AssemblyError("undefined label %r in %r"
                                % (label, inst.source_text))
        if not 1 <= index <= count + 1:
            raise AssemblyError("target %d outside the program in %r"
                                % (index, inst.source_text))
        from dataclasses import replace
        return replace(inst, target=index)


def _reg(text: str) -> str:
    try:
        return registers.canonical(text)
    except KeyError:
        raise AssemblyError("unknown register %r" % text)


def _mem(text: str) -> Tuple[int, str]:
    match = _MEM_RE.match(text.replace(" ", ""))
    if not match:
        raise AssemblyError("cannot parse memory operand %r" % text)
    return int(match.group(1), 0), _reg(match.group(2))
