"""A decoder for the RV32I subset (little-endian 32-bit words).

The safety checker operates on binary code; this decoder turns machine
words back into :class:`~repro.riscv.isa.RvInstruction`, synthesizing
``Ln`` labels for branch/jump targets like the SPARC decoder does.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Union

from repro.errors import DecodingError
from repro.riscv.isa import RvInstruction
from repro.riscv.program import RvProgram
from repro.riscv.registers import name_of

_R_FUNCT = {
    (0, 0x00): "add", (0, 0x20): "sub",
    (1, 0x00): "sll", (2, 0x00): "slt", (3, 0x00): "sltu",
    (4, 0x00): "xor", (5, 0x00): "srl", (5, 0x20): "sra",
    (6, 0x00): "or", (7, 0x00): "and",
}
_I_FUNCT = {0: "addi", 1: "slli", 2: "slti", 3: "sltiu", 4: "xori",
            6: "ori", 7: "andi"}
_LOAD_FUNCT = {0: "lb", 1: "lh", 2: "lw", 4: "lbu", 5: "lhu"}
_STORE_FUNCT = {0: "sb", 1: "sh", 2: "sw"}
_BRANCH_FUNCT = {0: "beq", 1: "bne", 4: "blt", 5: "bge",
                 6: "bltu", 7: "bgeu"}


def _signed(value: int, bits: int) -> int:
    if value & (1 << (bits - 1)):
        value -= 1 << bits
    return value


def decode_instruction(word: int, position: int = 0) -> RvInstruction:
    """Decode one word; *position* is the zero-based instruction slot
    (branch targets resolve to one-based indices relative to it)."""
    opcode = word & 0x7F
    rd = name_of((word >> 7) & 0x1F)
    funct3 = (word >> 12) & 0x7
    rs1 = name_of((word >> 15) & 0x1F)
    rs2 = name_of((word >> 20) & 0x1F)
    funct7 = (word >> 25) & 0x7F
    imm_i = _signed(word >> 20, 12)

    if opcode == 0x33:  # OP (R-type)
        op = _R_FUNCT.get((funct3, funct7))
        if op is None:
            raise DecodingError("unsupported R-type funct %d/%#x at %d"
                                % (funct3, funct7, position))
        return RvInstruction(op=op, rd=rd, rs1=rs1, rs2=rs2)
    if opcode == 0x13:  # OP-IMM
        if funct3 == 5:
            op = "srai" if funct7 == 0x20 else "srli"
            return RvInstruction(op=op, rd=rd, rs1=rs1,
                                 imm=(word >> 20) & 0x1F)
        op = _I_FUNCT[funct3]
        imm = ((word >> 20) & 0x1F) if op == "slli" else imm_i
        return RvInstruction(op=op, rd=rd, rs1=rs1, imm=imm)
    if opcode == 0x03:  # LOAD
        op = _LOAD_FUNCT.get(funct3)
        if op is None:
            raise DecodingError("unsupported load funct3 %d at %d"
                                % (funct3, position))
        return RvInstruction(op=op, rd=rd, rs1=rs1, imm=imm_i)
    if opcode == 0x23:  # STORE
        op = _STORE_FUNCT.get(funct3)
        if op is None:
            raise DecodingError("unsupported store funct3 %d at %d"
                                % (funct3, position))
        imm = _signed((funct7 << 5) | ((word >> 7) & 0x1F), 12)
        return RvInstruction(op=op, rs1=rs1, rs2=rs2, imm=imm)
    if opcode == 0x63:  # BRANCH
        op = _BRANCH_FUNCT.get(funct3)
        if op is None:
            raise DecodingError("unsupported branch funct3 %d at %d"
                                % (funct3, position))
        imm = _signed(
            ((word >> 31) << 12) | (((word >> 7) & 1) << 11)
            | (((word >> 25) & 0x3F) << 5) | (((word >> 8) & 0xF) << 1),
            13)
        return RvInstruction(op=op, rs1=rs1, rs2=rs2,
                             target=position + imm // 4 + 1)
    if opcode == 0x37:  # LUI
        return RvInstruction(op="lui", rd=rd, imm=(word >> 12) & 0xFFFFF)
    if opcode == 0x6F:  # JAL
        imm = _signed(
            ((word >> 31) << 20) | (((word >> 12) & 0xFF) << 12)
            | (((word >> 20) & 1) << 11) | (((word >> 21) & 0x3FF) << 1),
            21)
        return RvInstruction(op="jal", rd=rd,
                             target=position + imm // 4 + 1)
    if opcode == 0x67 and funct3 == 0:  # JALR
        return RvInstruction(op="jalr", rd=rd, rs1=rs1, imm=imm_i)
    raise DecodingError("cannot decode word %#010x at instruction %d"
                        % (word, position))


def decode_program(code: Union[bytes, bytearray, List[int]],
                   name: str = "decoded") -> RvProgram:
    """Decode a code image (bytes or a list of words) into a program."""
    if isinstance(code, (bytes, bytearray)):
        if len(code) % 4:
            raise DecodingError("code image length %d is not a multiple "
                                "of 4" % len(code))
        words = [struct.unpack("<I", bytes(code[i:i + 4]))[0]
                 for i in range(0, len(code), 4)]
    else:
        words = [w & 0xFFFFFFFF for w in code]
    instructions = [decode_instruction(word, i)
                    for i, word in enumerate(words)]
    labels: Dict[str, int] = {}
    for inst in instructions:
        if inst.target is not None and 1 <= inst.target:
            labels.setdefault("L%d" % inst.target, inst.target)
    from dataclasses import replace
    resolved = [
        replace(inst, target_label="L%d" % inst.target)
        if inst.target is not None else inst
        for inst in instructions
    ]
    return RvProgram(resolved, labels=labels, name=name)
