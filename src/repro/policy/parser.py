"""A small specification language for host typestates and policies.

The paper lists "the design of a language for specifying policies" as
the first issue safety checking faces (Section 1).  This module
implements a line-oriented language mirroring the paper's figures:

.. code-block:: text

    # Figure 1, host side
    region V
    loc e   : int    = initialized  perms ro  region V  summary
    loc arr : int[n] = {e}          perms rfo region V
    rule [V : int : ro]
    rule [V : int[n] : rfo]
    invoke %o0 = arr
    invoke %o1 = n
    assume n >= 1

    type thread = struct { tid: int; lwpid: int; next: thread ptr }
    rule [H : thread.tid, thread.lwpid : ro]
    rule [H : thread.next : rfo]

    function StartTimer {
        param %o0 : timer ptr = {t} perms fo
        requires %o0 != null
        returns %o0 : int = initialized perms o
        clobbers %g1 %g2
    }

Constraint expressions are linear comparisons over spec symbols and
registers (``n >= 1``, ``4 n > %g2 + 1``), combinable with ``and`` /
``or`` and parentheses; ``e mod k == r`` produces congruence atoms.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.errors import SpecError
from repro.logic.formula import (
    Formula, congruent, conj, disj, eq, ge, gt, le, lt, ne,
)
from repro.logic.terms import Linear
from repro.policy.model import (
    HostSpec, LocationDecl, TrustedFunction,
    parse_state, split_perms,
)
from repro.typesys.typestate import Typestate


def parse_spec(text: str) -> HostSpec:
    """Parse a complete host specification."""
    return _SpecParser(text).parse()


# ---------------------------------------------------------------------------
# constraint expressions
# ---------------------------------------------------------------------------

_TOKEN = re.compile(
    r"\s*(?:(?P<num>\d+)|(?P<name>%?[A-Za-z_][\w.]*)"
    r"|(?P<op><=|>=|==|!=|=|<|>|\+|-|\*|\(|\)))")

_NULL_SYNONYMS = {"null", "NULL"}


class ConstraintParser:
    """Recursive-descent parser for linear-constraint expressions.

    Grammar::

        formula := clause (('and'|'or') clause)*     (left-assoc, 'and'
                                                      binds tighter)
        clause  := comparison | '(' formula ')'
        comparison := sum REL sum | sum 'mod' NUM ('='|'==') NUM
        sum     := term (('+'|'-') term)*
        term    := NUM | NUM '*'? atom | atom
        atom    := register | symbol | 'null' (= 0)
    """

    def __init__(self, text: str):
        self._text = text
        self._tokens = self._tokenize(text)
        self._pos = 0

    @staticmethod
    def _tokenize(text: str) -> List[str]:
        tokens: List[str] = []
        pos = 0
        while pos < len(text):
            match = _TOKEN.match(text, pos)
            if not match:
                if text[pos:].strip():
                    raise SpecError("cannot tokenize constraint %r at %r"
                                    % (text, text[pos:]))
                break
            tokens.append(match.group(match.lastgroup))  # type: ignore[arg-type]
            pos = match.end()
        return tokens

    # -- token helpers -------------------------------------------------------

    def _peek(self) -> Optional[str]:
        return self._tokens[self._pos] if self._pos < len(self._tokens) \
            else None

    def _next(self) -> str:
        token = self._peek()
        if token is None:
            raise SpecError("unexpected end of constraint %r" % self._text)
        self._pos += 1
        return token

    def _expect(self, *alternatives: str) -> str:
        token = self._next()
        if token not in alternatives:
            raise SpecError("expected one of %s, got %r in %r"
                            % (alternatives, token, self._text))
        return token

    # -- grammar ------------------------------------------------------------------

    def parse(self) -> Formula:
        formula = self._or()
        if self._peek() is not None:
            raise SpecError("trailing tokens in constraint %r"
                            % self._text)
        return formula

    def _or(self) -> Formula:
        left = self._and()
        while self._peek() == "or":
            self._next()
            left = disj(left, self._and())
        return left

    def _and(self) -> Formula:
        left = self._clause()
        while self._peek() == "and":
            self._next()
            left = conj(left, self._clause())
        return left

    def _clause(self) -> Formula:
        if self._peek() == "(":
            self._next()
            inner = self._or()
            self._expect(")")
            return inner
        return self._comparison()

    def _comparison(self) -> Formula:
        left = self._sum()
        if self._peek() == "mod":
            self._next()
            modulus = int(self._next())
            self._expect("=", "==")
            residue = int(self._next())
            return congruent(left, modulus, residue)
        op = self._expect("<=", ">=", "==", "!=", "=", "<", ">")
        right = self._sum()
        return {
            "<=": le, ">=": ge, "==": eq, "=": eq, "!=": ne,
            "<": lt, ">": gt,
        }[op](left, right)

    def _sum(self) -> Linear:
        total = self._term()
        while self._peek() in ("+", "-"):
            op = self._next()
            term = self._term()
            total = total + term if op == "+" else total - term
        return total

    def _term(self) -> Linear:
        token = self._peek()
        if token is None:
            raise SpecError("unexpected end of constraint %r" % self._text)
        sign = 1
        while token in ("+", "-"):
            if token == "-":
                sign = -sign
            self._next()
            token = self._peek()
        if token is not None and token.isdigit():
            value = int(self._next())
            nxt = self._peek()
            if nxt == "*":
                self._next()
                nxt = self._peek()
            if nxt is not None and _is_name(nxt) \
                    and nxt not in ("and", "or", "mod"):
                return Linear.var(self._next(), sign * value)
            return Linear.const(sign * value)
        if token is not None and _is_name(token):
            name = self._next()
            if name in _NULL_SYNONYMS:
                return Linear.const(0)
            return Linear.var(name, sign)
        raise SpecError("cannot parse term at %r in %r"
                        % (token, self._text))


def _is_name(token: str) -> bool:
    return bool(re.match(r"%?[A-Za-z_]", token))


def parse_constraint(text: str) -> Formula:
    """Parse one constraint expression into a formula."""
    return ConstraintParser(text).parse()


# ---------------------------------------------------------------------------
# the specification language
# ---------------------------------------------------------------------------

_LOC_RE = re.compile(
    r"^loc\s+(?P<name>[\w.$]+)\s*:\s*(?P<type>[^=]+?)"
    r"(?:=\s*(?P<state>\{[^}]*\}|\w+))?"
    r"(?:\s+perms\s+(?P<perms>[rwfxo]+))?"
    r"(?:\s+region\s+(?P<region>\w+))?"
    r"(?:\s+align\s+(?P<align>\d+))?"
    r"(?P<summary>\s+summary)?\s*$")

_RULE_RE = re.compile(
    r"^rule\s*\[\s*(?P<region>\w+)\s*:\s*(?P<cats>[^:]+?)\s*:\s*"
    r"(?P<perms>[rwfxo]+)\s*\]\s*$")

_PARAM_RE = re.compile(
    r"^(param|returns)\s+(?P<reg>%?\w+)\s*:\s*(?P<type>[^=]+?)"
    r"(?:=\s*(?P<state>\{[^}]*\}|\w+))?"
    r"(?:\s+perms\s+(?P<perms>[rwfxo]+))?\s*$")


class _SpecParser:
    def __init__(self, text: str):
        self._lines = text.splitlines()
        self._spec = HostSpec()

    def parse(self) -> HostSpec:
        index = 0
        while index < len(self._lines):
            line = self._strip(self._lines[index])
            index += 1
            if not line:
                continue
            head = line.split(None, 1)[0]
            if head == "region":
                continue  # regions are implicit in loc/rule lines
            if head == "type":
                self._parse_type(line)
            elif head == "abstract":
                self._parse_abstract(line)
            elif head == "loc":
                self._parse_loc(line)
            elif head == "rule":
                self._parse_rule(line)
            elif head == "invoke":
                self._parse_invoke(line)
            elif head == "entry":
                self._spec.invocation.entry_label = line.split(None, 1)[1]
            elif head == "assume":
                self._spec.constrain(
                    parse_constraint(line.split(None, 1)[1]))
            elif head == "ensure":
                self._spec.postcondition = conj(
                    self._spec.postcondition,
                    parse_constraint(line.split(None, 1)[1]))
            elif head == "function":
                index = self._parse_function(line, index)
            elif head == "automaton":
                index = self._parse_automaton(line, index)
            else:
                raise SpecError("unknown specification line %r" % line)
        return self._spec

    @staticmethod
    def _strip(line: str) -> str:
        return line.split("#", 1)[0].strip()

    # -- one-line forms -------------------------------------------------------

    def _parse_type(self, line: str) -> None:
        match = re.match(r"^type\s+(\w+)\s*=\s*struct\s*\{(.*)\}\s*$",
                         line)
        if not match:
            raise SpecError("cannot parse type definition %r" % line)
        name, body = match.group(1), match.group(2)
        members: List[Tuple[str, str]] = []
        for part in body.split(";"):
            part = part.strip()
            if not part:
                continue
            label, __, texpr = part.partition(":")
            if not texpr:
                raise SpecError("struct member needs 'label: type' in %r"
                                % line)
            members.append((label.strip(), texpr.strip()))
        # Self-referential structs (thread.next): pre-register a pointer
        # to an abstract stand-in if the name is used inside its own body.
        self._spec.types.define_struct(name, self._resolve_members(
            name, members))

    def _resolve_members(self, struct_name: str,
                         members: List[Tuple[str, str]]):
        resolved = []
        for label, texpr in members:
            if texpr.split()[0] == struct_name \
                    and self._spec.types.lookup(struct_name) is None:
                # Recursive pointer: model as pointer to the named
                # abstract location summary; declared via an abstract
                # type of pointer size.
                inner = self._spec.types.lookup("_self_%s" % struct_name)
                if inner is None:
                    inner = self._spec.types.define_abstract(
                        "_self_%s" % struct_name, size=4)
                texpr_rest = texpr.split(None, 1)[1] \
                    if len(texpr.split()) > 1 else ""
                resolved.append((label, ("_self_%s %s"
                                         % (struct_name,
                                            texpr_rest)).strip()))
            else:
                resolved.append((label, texpr))
        return resolved

    def _parse_abstract(self, line: str) -> None:
        match = re.match(r"^abstract\s+(\w+)\s+size\s+(\d+)"
                         r"(?:\s+align\s+(\d+))?\s*$", line)
        if not match:
            raise SpecError("cannot parse abstract type %r" % line)
        self._spec.types.define_abstract(
            match.group(1), int(match.group(2)),
            int(match.group(3) or 4))

    def _parse_loc(self, line: str) -> None:
        match = _LOC_RE.match(line)
        if not match:
            raise SpecError("cannot parse location declaration %r" % line)
        self._spec.declare(LocationDecl(
            name=match.group("name"),
            type=match.group("type").strip(),
            state=match.group("state") or "initialized",
            perms=match.group("perms") or "ro",
            region=match.group("region") or "",
            align=int(match.group("align") or 4),
            summary=bool(match.group("summary")),
        ))

    def _parse_rule(self, line: str) -> None:
        match = _RULE_RE.match(line)
        if not match:
            raise SpecError("cannot parse policy rule %r" % line)
        categories = tuple(c.strip()
                           for c in match.group("cats").split(",")
                           if c.strip())
        self._spec.rule(match.group("region"), categories,
                        match.group("perms"))

    def _parse_invoke(self, line: str) -> None:
        match = re.match(r"^invoke\s+(%?\w+)\s*(?:=|<-)\s*([\w.$]+)\s*$",
                         line)
        if not match:
            raise SpecError("cannot parse invocation binding %r" % line)
        self._spec.bind(match.group(1), match.group(2))

    # -- function blocks -------------------------------------------------------

    def _parse_function(self, header: str, index: int) -> int:
        match = re.match(r"^function\s+([\w.$]+)\s*\{\s*$", header)
        if not match:
            raise SpecError("cannot parse function header %r" % header)
        fn = TrustedFunction(name=match.group(1))
        while index < len(self._lines):
            line = self._strip(self._lines[index])
            index += 1
            if not line:
                continue
            if line == "}":
                self._spec.trust(fn)
                return index
            head = line.split(None, 1)[0]
            if head in ("param", "returns"):
                pmatch = _PARAM_RE.match(line)
                if not pmatch:
                    raise SpecError("cannot parse %r" % line)
                readable, writable, value_access = split_perms(
                    pmatch.group("perms") or "o")
                ts = Typestate(
                    type=self._spec.types.parse(pmatch.group("type")),
                    state=parse_state(pmatch.group("state")
                                      or "initialized"),
                    access=value_access,
                )
                target = fn.params if head == "param" else fn.returns
                target[pmatch.group("reg")] = ts
            elif head == "requires":
                fn.precondition = conj(
                    fn.precondition,
                    parse_constraint(line.split(None, 1)[1]))
            elif head == "ensures":
                fn.postcondition = conj(
                    fn.postcondition,
                    parse_constraint(line.split(None, 1)[1]))
            elif head == "clobbers":
                fn.clobbers = tuple(line.split()[1:])
            else:
                raise SpecError("unknown function-spec line %r" % line)
        raise SpecError("unterminated function block for %r" % fn.name)

    def _parse_automaton(self, header: str, index: int) -> int:
        from repro.analysis.automaton import SecurityAutomaton
        match = re.match(r"^automaton\s+(\w+)\s*\{\s*$", header)
        if not match:
            raise SpecError("cannot parse automaton header %r" % header)
        automaton = SecurityAutomaton(name=match.group(1))
        while index < len(self._lines):
            line = self._strip(self._lines[index])
            index += 1
            if not line:
                continue
            if line == "}":
                automaton.validate()
                self._spec.automata[automaton.name] = automaton
                return index
            start = re.match(r"^start\s+(\w+)$", line)
            final = re.match(r"^final\s+(\w+(?:\s+\w+)*)$", line)
            edge = re.match(
                r"^(\w+)\s*->\s*(\w+)\s*:\s*([\w.$]+)$", line)
            anywhere = re.match(r"^any\s*:\s*([\w.$]+)$", line)
            if start:
                automaton.add_state(start.group(1), start=True)
            elif final:
                for name in final.group(1).split():
                    automaton.add_state(name, final=True)
            elif edge:
                automaton.add_state(edge.group(1))
                automaton.add_state(edge.group(2))
                automaton.add_transition(edge.group(1), edge.group(2),
                                         edge.group(3))
            elif anywhere:
                automaton.allow_anywhere(anywhere.group(1))
            else:
                raise SpecError("unknown automaton line %r" % line)
        raise SpecError("unterminated automaton block for %r"
                        % automaton.name)
