"""Host-side specifications: typestate declarations, access policies,
trusted functions, invocation specs, and their textual language."""

from repro.policy.model import (
    HostSpec, InvocationSpec, LocationDecl, PolicyRule, TrustedFunction,
    TypeEnvironment, parse_state, split_perms,
)
from repro.policy.parser import ConstraintParser, parse_constraint, parse_spec

__all__ = [
    "HostSpec", "InvocationSpec", "LocationDecl", "PolicyRule",
    "TrustedFunction", "TypeEnvironment", "parse_state", "split_perms",
    "ConstraintParser", "parse_constraint", "parse_spec",
]
