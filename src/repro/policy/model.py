"""The host-side specification model (paper Section 2).

Safety checking takes four inputs; all but the untrusted code come from
the host and are modeled here:

* a **host typestate specification** — a *data aspect* (type and state
  of host data before the invocation: :class:`LocationDecl`) and a
  *control aspect* (safety pre/postconditions for callable host
  functions: :class:`TrustedFunction`);
* an **invocation specification** — the initial values passed to the
  untrusted code (:class:`InvocationSpec`);
* a **safety policy** — region/category/access triples
  (:class:`PolicyRule`) controlling which memory is reachable and how
  it may be used, plus optional safety postconditions.

A :class:`TypeEnvironment` holds named types and parses the type
expressions (``int[n]``, ``thread ptr``, ``int(n]`` …) used throughout
specifications.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import SpecError
from repro.logic.formula import Formula, TRUE, conj
from repro.typesys.access import AccessSet, access
from repro.typesys.state import INIT, State, UNINIT, points_to
from repro.typesys.types import (
    AbstractType, ArrayBaseType, ArrayMidType, FunctionPointerType, Member,
    PointerType, StructType, Type, ground_type, sizeof,
)
from repro.typesys.typestate import Typestate


class TypeEnvironment:
    """Named types visible to specifications."""

    def __init__(self) -> None:
        self._named: Dict[str, Type] = {}

    def define(self, name: str, type_: Type) -> Type:
        if name in self._named:
            raise SpecError("type %r already defined" % name)
        self._named[name] = type_
        return type_

    def define_struct(self, name: str,
                      members: Sequence[Tuple[str, Union[str, Type]]],
                      ) -> StructType:
        """Define a struct by (label, type) pairs; offsets are assigned
        sequentially with natural alignment."""
        built: List[Member] = []
        offset = 0
        for label, texpr in members:
            mtype = texpr if isinstance(texpr, Type) else self.parse(texpr)
            size = sizeof(mtype)
            align = min(size, 4) or 1
            offset = (offset + align - 1) // align * align
            built.append(Member(label=label, type=mtype, offset=offset))
            offset += size
        struct = StructType(name=name, members=tuple(built))
        self.define(name, struct)
        return struct

    def define_abstract(self, name: str, size: int,
                        align: int = 4) -> AbstractType:
        return self.define(name, AbstractType(name=name, size=size,
                                              align=align))  # type: ignore[return-value]

    def lookup(self, name: str) -> Optional[Type]:
        return self._named.get(name)

    # -- type expressions ---------------------------------------------------

    _SUFFIX = re.compile(
        r"\s*(?:(?P<ptr>ptr)\b"
        r"|\[\s*(?P<base_size>\w+)\s*\]"
        r"|\(\s*(?P<mid_size>\w+)\s*\])")

    def parse(self, text: str) -> Type:
        """Parse a type expression.

        Grammar: a base name (ground type, named struct/union/abstract
        type, or ``name()`` for a function pointer) followed by any
        number of ``[n]`` (array-base pointer), ``(n]`` (array-middle
        pointer), and ``ptr`` suffixes, applied left to right.
        """
        text = text.strip()
        match = re.match(r"(\w+)\s*(\(\s*\))?", text)
        if not match:
            raise SpecError("cannot parse type expression %r" % text)
        name = match.group(1)
        rest = text[match.end():]
        if match.group(2):
            current: Type = FunctionPointerType(name=name)
        else:
            named = self._named.get(name)
            if named is not None:
                current = named
            else:
                try:
                    current = ground_type(name)
                except KeyError:
                    raise SpecError("unknown type %r in %r" % (name, text))
        while rest.strip():
            suffix = self._SUFFIX.match(rest)
            if not suffix:
                raise SpecError("cannot parse type suffix %r in %r"
                                % (rest, text))
            if suffix.group("ptr"):
                current = PointerType(pointee=current)
            elif suffix.group("base_size") is not None:
                current = ArrayBaseType(element=current,
                                        size=_size(suffix.group("base_size")))
            else:
                current = ArrayMidType(element=current,
                                       size=_size(suffix.group("mid_size")))
            rest = rest[suffix.end():]
        return current


def _size(text: str) -> Union[int, str]:
    return int(text) if text.isdigit() else text


# ---------------------------------------------------------------------------
# data aspect: location declarations
# ---------------------------------------------------------------------------


@dataclass
class LocationDecl:
    """One abstract location of the host's data (or a named initial
    value such as ``arr`` in paper Figure 1).

    ``state`` accepts a :class:`State`, the string ``"initialized"`` /
    ``"uninitialized"``, or a set-like string ``"{e, null}"`` naming
    points-to targets.  ``perms`` uses the paper's five letters
    (``rwfxo``): ``r``/``w`` become location attributes, the rest the
    value's access permissions.
    """

    name: str
    type: Union[str, Type]
    state: Union[str, State] = "initialized"
    perms: str = "ro"
    region: str = ""
    #: True when this location summarizes several physical locations
    #: (array elements, all nodes of a list); forces weak updates.
    summary: bool = False
    #: Known alignment of the location's address (bytes).
    align: int = 4
    #: Size override (defaults to sizeof(type)).
    size: Optional[int] = None


@dataclass
class PolicyRule:
    """``[Region : Category : Access]`` (paper Section 2).

    *categories* are type expressions (``int``, ``int[n]``) or
    aggregate-field paths (``thread.tid``); *perms* any subset of
    ``rwfxo``.
    """

    region: str
    categories: Tuple[str, ...]
    perms: str

    def __str__(self) -> str:
        return "[%s : %s : %s]" % (self.region,
                                   ", ".join(self.categories), self.perms)


@dataclass
class TrustedFunction:
    """Control aspect: a host function the untrusted code may call.

    ``params`` maps argument registers to the typestates they must hold
    at the call; ``precondition``/``postcondition`` are linear
    constraints over registers and spec symbols; ``returns`` maps
    registers to their typestates after the call; ``clobbers`` lists
    additional caller-saved registers whose contents become unknown.
    """

    name: str
    params: Dict[str, Typestate] = field(default_factory=dict)
    precondition: Formula = TRUE
    returns: Dict[str, Typestate] = field(default_factory=dict)
    postcondition: Formula = TRUE
    clobbers: Tuple[str, ...] = ("%o1", "%o2", "%o3", "%o4", "%o5",
                                 "%g1", "%g2", "%g3", "%g4")


@dataclass
class InvocationSpec:
    """How the host invokes the untrusted code.

    ``bindings`` maps argument registers to what they initially hold:
    the name of a declared location (the register receives that
    declaration's typestate) or a spec symbol (the register holds an
    initialized integer constrained by ``symbol = register``).
    """

    bindings: Dict[str, str] = field(default_factory=dict)
    entry_label: str = ""


@dataclass
class HostSpec:
    """Everything the host provides: types, data declarations, trusted
    functions, the access policy, the invocation, initial linear
    constraints, and optional security automata over trusted-call
    events."""

    types: TypeEnvironment = field(default_factory=TypeEnvironment)
    locations: List[LocationDecl] = field(default_factory=list)
    functions: Dict[str, TrustedFunction] = field(default_factory=dict)
    rules: List[PolicyRule] = field(default_factory=list)
    invocation: InvocationSpec = field(default_factory=InvocationSpec)
    constraints: List[Formula] = field(default_factory=list)
    #: Security automata by name (paper Section 1's extension).
    automata: Dict[str, object] = field(default_factory=dict)
    #: Safety postcondition that must hold when control returns to the
    #: host (paper Section 2, last paragraph).
    postcondition: Formula = TRUE

    # -- builder helpers -----------------------------------------------------

    def declare(self, decl: LocationDecl) -> LocationDecl:
        if any(d.name == decl.name for d in self.locations):
            raise SpecError("location %r declared twice" % decl.name)
        self.locations.append(decl)
        return decl

    def rule(self, region: str, categories: Sequence[str],
             perms: str) -> PolicyRule:
        rule = PolicyRule(region=region, categories=tuple(categories),
                          perms=perms)
        self.rules.append(rule)
        return rule

    def trust(self, fn: TrustedFunction) -> TrustedFunction:
        self.functions[fn.name] = fn
        return fn

    def bind(self, register: str, value: str) -> None:
        self.invocation.bindings[register] = value

    def constrain(self, *formulas: Formula) -> None:
        self.constraints.extend(formulas)

    def initial_constraint(self) -> Formula:
        return conj(*self.constraints)

    # -- resolution helpers ------------------------------------------------------

    def location(self, name: str) -> LocationDecl:
        for decl in self.locations:
            if decl.name == name:
                return decl
        raise SpecError("unknown location %r" % name)

    def resolve_type(self, decl: LocationDecl) -> Type:
        if isinstance(decl.type, Type):
            return decl.type
        return self.types.parse(decl.type)

    def resolve_state(self, decl: LocationDecl) -> State:
        return parse_state(decl.state)


def parse_state(spec: Union[str, State]) -> State:
    """Turn a state specification into a :class:`State` value."""
    if isinstance(spec, State):
        return spec
    text = spec.strip()
    if text in ("initialized", "init", "[it]"):
        return INIT
    if text in ("uninitialized", "uninit", "[ut]", "[up]"):
        return UNINIT
    if text.startswith("{") and text.endswith("}"):
        names = [part.strip() for part in text[1:-1].split(",")
                 if part.strip()]
        if not names:
            raise SpecError("empty points-to set in state spec")
        return points_to(*names)
    raise SpecError("cannot parse state %r" % (spec,))


def split_perms(perms: str) -> Tuple[bool, bool, AccessSet]:
    """Split five-letter ``rwfxo`` permissions into (readable, writable,
    value access) — r/w are location attributes, f/x/o value permissions
    (paper Section 4.1)."""
    bad = set(perms) - set("rwfxo")
    if bad:
        raise SpecError("invalid permission letters %s" % sorted(bad))
    value = "".join(ch for ch in perms if ch in "fxo")
    return "r" in perms, "w" in perms, access(value)
