"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single type at the API boundary.  The sub-hierarchy
mirrors the subsystems: assembly/encoding errors, CFG construction errors,
specification errors, and analysis errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class AssemblyError(ReproError):
    """Raised when SPARC assembly text cannot be parsed.

    Carries the one-based source line number when available.
    """

    def __init__(self, message: str, line: int = 0):
        self.line = line
        if line:
            message = "line %d: %s" % (line, message)
        super().__init__(message)


class EncodingError(ReproError):
    """Raised when an instruction cannot be encoded to a machine word."""


class DecodingError(ReproError):
    """Raised when a 32-bit word is not a recognized SPARC instruction."""


class EmulationError(ReproError):
    """Raised by the concrete emulator on an illegal run-time action."""


class RegionViolation(EmulationError):
    """A load/store escaped the registered memory regions (or wrote to
    a read-only region) during strict emulation.

    Carries the faulting address, access size in bytes, access kind
    (``"load"``/``"store"``), and one-based instruction index, so a
    runtime safety monitor can report violations with the same
    precision the static checker does."""

    def __init__(self, address: int, size: int, kind: str, index: int):
        self.address = address
        self.size = size
        self.kind = kind
        self.index = index
        super().__init__(
            "out-of-region %s of %d byte%s at 0x%x (instruction %d)"
            % (kind, size, "" if size == 1 else "s", address, index))


class FuzzError(ReproError):
    """Raised by the differential fuzzing subsystem on malformed
    sketches, corpus entries, or harness misconfiguration."""


class CFGError(ReproError):
    """Raised when a control-flow graph cannot be constructed.

    This includes branches to nonexistent targets and irreducible graphs
    (the induction-iteration method requires reducible control flow).
    """


class SpecError(ReproError):
    """Raised when a host typestate/invocation/policy specification is
    malformed or internally inconsistent."""


class AnalysisError(ReproError):
    """Raised when the safety-checking analysis cannot proceed.

    Examples: recursive programs (rejected per paper Section 5.2.1) and
    instructions outside the supported abstract semantics.
    """


class RecursionRejected(AnalysisError):
    """The untrusted code is recursive; the prototype rejects recursion
    (paper Section 5.2.1, second enhancement)."""


class ProverError(ReproError):
    """Raised on internal prover failures (not on 'formula is invalid',
    which is an ordinary result)."""


class ProverTimeout(ReproError):
    """Raised when a check exceeds its wall-clock budget
    (``CheckerOptions.timeout_s``).

    Deliberately *not* a :class:`ProverError`: resource fallbacks catch
    ``ProverError`` and answer conservatively, whereas a timeout must
    abort the whole check and surface as an "undecided" verdict.
    """
