"""Tracing through the real pipeline: schema validity, coverage, and
— the hard constraint — verdict/stat neutrality.

The parity tests run every check twice, traced and untraced, and
require identical verdicts, per-condition proof outcomes, violations,
and integer prover counters.  Wall-clock counters (``*_seconds``) and
derived rates are excluded: they are volatile by nature, not part of
the semantic result.
"""

import pytest

from repro.analysis.checker import check_assembly
from repro.analysis.options import CheckerOptions
from repro.programs import fast_programs
from repro.programs.sum_array import PROGRAM as SUM_PROGRAM
from repro.trace import load_trace, summarize, validate_record
from repro.trace.schema import PHASE_SPANS

# The RV32I sum loop of tests/ir/test_parity.py — certifies with
# induction on the riscv frontend.
RISCV_SUM = """
1: mv a2,a0
2: li a0,0
3: li t0,0
4: bge t0,a1,11
5: slli t1,t0,2
6: add t2,a2,t1
7: lw t1,0(t2)
8: addi t0,t0,1
9: add a0,a0,t1
10: blt t0,a1,5
11: ret
"""

RISCV_SUM_SPEC = """
loc e   : int    = initialized  perms ro  region V summary
loc arr : int[n] = {e}          perms rfo region V
rule [V : int : ro]
rule [V : int[n] : rfo]
invoke a0 = arr
invoke a1 = n
assume n >= 1
"""


def fingerprint(result):
    """Everything semantic about a check outcome."""
    return (result.safe, result.timed_out,
            tuple((p.uid, p.index, p.proved) for p in result.proofs),
            tuple((v.index, v.category, v.description, v.phase)
                  for v in result.violations))


def stable_stats(result):
    """The prover counters that must not move under tracing: every
    integer counter; seconds and derived rates are wall-clock
    volatile."""
    return {name: value
            for name, value in result.prover_stats.items()
            if not name.endswith("_rate")
            and not name.endswith("seconds")}


def assert_parity(untraced, traced):
    assert fingerprint(untraced) == fingerprint(traced)
    assert stable_stats(untraced) == stable_stats(traced)


class TestTraceCoverage:
    @pytest.fixture(scope="class")
    def traced(self, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("trace") / "sum.jsonl")
        result = SUM_PROGRAM.check(CheckerOptions(trace_path=path))
        return result, load_trace(path, validate=False)

    def test_all_records_schema_valid(self, traced):
        __, records = traced
        for record in records:
            validate_record(record)

    def test_all_five_phases_covered(self, traced):
        __, records = traced
        names = {r["name"] for r in records}
        for phase in PHASE_SPANS:
            assert phase in names

    def test_single_root_check_span_with_verdict(self, traced):
        result, records = traced
        roots = [r for r in records
                 if r["type"] == "span" and r["parent_id"] is None]
        assert len(roots) == 1
        assert roots[0]["name"] == "check"
        assert roots[0]["attrs"]["verdict"] == result.verdict
        assert roots[0]["attrs"]["arch"] == "sparc"

    def test_every_obligation_traced_with_provenance(self, traced):
        result, records = traced
        spans = [r for r in records if r["name"] == "obligation"]
        assert len(spans) == len(result.proofs)
        by_oid = {s["attrs"]["oid"]: s["attrs"] for s in spans}
        for proof, (oid, attrs) in zip(result.proofs,
                                       sorted(by_oid.items())):
            assert attrs["instruction"] == proof.index
            assert attrs["address"] == (proof.index - 1) * 4
            assert attrs["proved"] == proof.proved
            assert attrs["function"] == "<main>"
            assert attrs["loop_header"] is not None  # sum's loop

    def test_every_prover_query_traced(self, traced):
        result, records = traced
        events = [r for r in records if r["name"] == "prover:query"]
        assert len(events) \
            == result.prover_stats["satisfiability_queries"]

    def test_induction_rounds_traced(self, traced):
        result, records = traced
        runs = [r for r in records if r["name"] == "induction:run"]
        assert len(runs) == result.induction_runs
        assert any(r["attrs"]["success"] for r in runs)
        assert any(r["name"] == "induction:candidate"
                   for r in records)

    def test_summary_over_real_trace(self, traced):
        result, records = traced
        summary = summarize(records)
        assert summary["check"]["verdict"] == result.verdict
        assert summary["obligations"]["total"] == len(result.proofs)
        assert len(summary["phases"]) == len(PHASE_SPANS)


class TestTracingParity:
    @pytest.mark.parametrize(
        "program", fast_programs(), ids=lambda p: p.name)
    def test_figure9_sparc_serial(self, program, tmp_path):
        path = str(tmp_path / "t.jsonl")
        untraced = program.check(CheckerOptions())
        traced = program.check(CheckerOptions(trace_path=path))
        assert_parity(untraced, traced)
        for record in load_trace(path, validate=False):
            validate_record(record)

    def test_riscv_serial(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        untraced = check_assembly(RISCV_SUM, RISCV_SUM_SPEC,
                                  arch="riscv",
                                  options=CheckerOptions())
        traced = check_assembly(RISCV_SUM, RISCV_SUM_SPEC,
                                arch="riscv",
                                options=CheckerOptions(trace_path=path))
        assert untraced.safe and traced.safe
        assert_parity(untraced, traced)
        records = load_trace(path)
        root = [r for r in records if r["name"] == "check"][0]
        assert root["attrs"]["arch"] == "riscv"

    def test_riscv_unsafe_serial(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        buggy = RISCV_SUM.replace("blt t0,a1,5", "bge a1,t0,5")
        untraced = check_assembly(buggy, RISCV_SUM_SPEC, arch="riscv")
        traced = check_assembly(buggy, RISCV_SUM_SPEC, arch="riscv",
                                options=CheckerOptions(trace_path=path))
        assert not untraced.safe and not traced.safe
        assert_parity(untraced, traced)
        spans = [r for r in load_trace(path)
                 if r["name"] == "obligation"]
        assert any(s["attrs"]["proved"] is False for s in spans)

    def test_jobs2_parity_and_worker_span_forwarding(self, tmp_path):
        # "hash" has several obligation groups, so --jobs 2 really
        # dispatches to pool workers; their spans must come back
        # through the result pickles with process-unique ids.
        program = next(p for p in fast_programs() if p.name == "hash")
        path = str(tmp_path / "t.jsonl")
        untraced = program.check(CheckerOptions(jobs=2))
        traced = program.check(CheckerOptions(jobs=2, trace_path=path))
        assert_parity(untraced, traced)
        if traced.prover_stats.get("pool_tasks_dispatched"):
            records = load_trace(path)
            forwarded = [r for r in records
                         if r["span_id"].startswith("w")]
            assert forwarded
            assert {r["pid"] for r in records} != \
                {records[-1]["pid"]}  # spans from worker processes
            local_ids = {r["span_id"] for r in records
                         if not r["span_id"].startswith("w")}
            assert not any(r["span_id"] in local_ids
                           for r in forwarded)

    def test_jobs2_matches_serial_traced(self, tmp_path):
        program = next(p for p in fast_programs() if p.name == "hash")
        serial = program.check(
            CheckerOptions(trace_path=str(tmp_path / "s.jsonl")))
        parallel = program.check(
            CheckerOptions(jobs=2, trace_path=str(tmp_path / "p.jsonl")))
        assert fingerprint(serial) == fingerprint(parallel)


@pytest.mark.bench
class TestTracingParityFull:
    def test_full_figure9_sparc(self, tmp_path):
        from repro.programs import all_programs
        for program in all_programs():
            path = str(tmp_path / ("%s.jsonl" % program.name))
            untraced = program.check(CheckerOptions())
            traced = program.check(CheckerOptions(trace_path=path))
            assert_parity(untraced, traced)
            for record in load_trace(path, validate=False):
                validate_record(record)
