"""Unit tests of the tracer, the record schema, and the summarizer."""

import json
import os

import pytest

from repro.trace import (
    NULL_TRACER, SCHEMA_VERSION, TraceError, Tracer, load_trace,
    render_summary, summarize, validate_record,
)
from repro.trace.schema import validate_records
from repro.trace.tracer import clip, new_trace_id


class TestTracer:
    def test_span_nesting_parents(self):
        tracer = Tracer.buffered(trace_id="t")
        with tracer.span("check") as root:
            with tracer.span("phase:preparation") as inner:
                tracer.event("prover:query", digest="d", cache="raw",
                             formula_size=1, seconds=0.0, result=True)
        records = tracer.drain()
        assert [r["name"] for r in records] == [
            "prover:query", "phase:preparation", "check"]
        event, inner_span, root_span = records
        assert root_span["parent_id"] is None
        assert inner_span["parent_id"] == root_span["span_id"]
        assert event["parent_id"] == inner_span["span_id"]
        assert root.id == root_span["span_id"]
        assert inner.id == inner_span["span_id"]
        assert all(r["trace_id"] == "t" for r in records)

    def test_span_records_validate(self):
        tracer = Tracer.buffered()
        with tracer.span("check", program="p", arch="sparc") as span:
            span.set(verdict="certified")
            tracer.event("custom:event", anything="goes")
        assert validate_records(tracer.drain()) == 2

    def test_span_timing_monotonic(self):
        tracer = Tracer.buffered()
        with tracer.span("outer"):
            pass
        (record,) = tracer.drain()
        assert record["t_end"] >= record["t_start"]
        assert record["dur_s"] == pytest.approx(
            record["t_end"] - record["t_start"])
        assert record["pid"] == os.getpid()

    def test_exception_still_emits_span_with_error(self):
        tracer = Tracer.buffered()
        with pytest.raises(ValueError):
            with tracer.span("phase:annotation"):
                raise ValueError("boom")
        (record,) = tracer.drain()
        assert record["attrs"]["error"] == "ValueError"
        validate_record(record)

    def test_drain_clears_buffer(self):
        tracer = Tracer.buffered()
        tracer.event("e")
        assert len(tracer.drain()) == 1
        assert tracer.drain() == []

    def test_forward_remaps_ids_and_parents(self):
        worker = Tracer.buffered(trace_id="worker")
        with worker.span("obligation", oid=1):
            worker.event("prover:query", digest="d", cache="decided",
                         formula_size=1, seconds=0.0, result=True)
        shipped = worker.drain()
        parent = Tracer.buffered(trace_id="parent")
        with parent.span("phase:global_verification") as phase:
            parent.forward(shipped, prefix="w0:")
        records = parent.drain()
        event, span, phase_span = records
        assert span["span_id"].startswith("w0:")
        assert span["parent_id"] == phase.id  # re-rooted worker root
        assert event["parent_id"] == span["span_id"]
        assert all(r["trace_id"] == "parent" for r in records)
        # ids from different workers can never collide
        assert phase_span["span_id"] == phase.id

    def test_to_path_writes_jsonl(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with Tracer.to_path(path) as tracer:
            with tracer.span("check", program="p", arch="riscv"):
                pass
        lines = open(path).read().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["name"] == "check"
        assert load_trace(path)[0]["v"] == SCHEMA_VERSION

    def test_null_tracer_is_inert(self):
        assert NULL_TRACER.enabled is False
        with NULL_TRACER.span("check") as span:
            span.set(verdict="x")
        NULL_TRACER.event("anything")
        assert NULL_TRACER.drain() == []
        NULL_TRACER.close()

    def test_new_trace_ids_unique(self):
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64

    def test_clip_bounds_long_text(self):
        assert clip("short") == "short"
        assert len(clip("x" * 1000, limit=50)) == 50


class TestSchema:
    def _span(self, **overrides):
        record = {
            "v": SCHEMA_VERSION, "type": "span", "trace_id": "t",
            "span_id": "s1", "parent_id": None, "name": "anything",
            "pid": 1, "t_start": 1.0, "t_end": 2.0, "dur_s": 1.0,
            "attrs": {},
        }
        record.update(overrides)
        return record

    def test_valid_span_passes(self):
        validate_record(self._span())

    def test_missing_envelope_field_fails(self):
        record = self._span()
        del record["trace_id"]
        with pytest.raises(TraceError):
            validate_record(record)

    def test_wrong_version_fails(self):
        with pytest.raises(TraceError):
            validate_record(self._span(v=999))

    def test_unknown_type_fails(self):
        with pytest.raises(TraceError):
            validate_record(self._span(type="metric"))

    def test_span_negative_duration_fails(self):
        with pytest.raises(TraceError):
            validate_record(self._span(t_end=0.5))

    def test_known_name_requires_attrs(self):
        with pytest.raises(TraceError):
            validate_record(self._span(name="obligation"))

    def test_unknown_cache_level_fails(self):
        record = self._span(
            type="event", name="prover:query",
            attrs={"digest": "d", "cache": "l5", "formula_size": 1,
                   "seconds": 0.0, "result": True})
        del record["t_start"], record["t_end"], record["dur_s"]
        record["t"] = 1.0
        with pytest.raises(TraceError):
            validate_record(record)

    def test_load_trace_rejects_bad_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(TraceError):
            load_trace(str(path))


class TestSummarize:
    def _records(self):
        tracer = Tracer.buffered()
        with tracer.span("check", program="p", arch="sparc") as root:
            with tracer.span("phase:global_verification"):
                with tracer.span("obligation", oid=0, digest="d",
                                 category="array-bounds",
                                 description="x", instruction=3,
                                 address=8, function="<main>",
                                 loop_header=2, proved=None) as ob:
                    tracer.event("prover:query", digest="q",
                                 cache="decided", formula_size=4,
                                 seconds=0.25, result=False)
                    ob.set(proved=True)
            root.set(verdict="certified")
        return tracer.drain()

    def test_summary_counts(self):
        summary = summarize(self._records())
        assert summary["check"]["verdict"] == "certified"
        assert summary["obligations"]["total"] == 1
        assert summary["obligations"]["proved"] == 1
        assert summary["queries"]["total"] == 1
        assert summary["queries"]["by_cache"] == {"decided": 1}
        assert summary["slowest_queries"][0]["seconds"] == 0.25
        assert summary["slowest_obligations"][0]["address"] == 8
        assert [p["phase"] for p in summary["phases"]] \
            == ["global_verification"]

    def test_render_is_text(self):
        text = render_summary(summarize(self._records()))
        assert "certified" in text
        assert "array-bounds" in text
        assert "<main>+0x8" in text
