"""The ``repro cache`` maintenance subcommand (direct main()
invocation; no subprocesses)."""

import json
import os

import pytest

from repro.cli import main
from repro.programs.sum_array import SOURCE, SPEC


@pytest.fixture()
def files(tmp_path):
    code = tmp_path / "sum.s"
    code.write_text(SOURCE)
    spec = tmp_path / "sum.policy"
    spec.write_text(SPEC)
    cache = tmp_path / "prover.sqlite"
    return code, spec, cache


def warm(code, spec, cache):
    assert main(["check", str(code), str(spec),
                 "--cache", str(cache)]) == 0


class TestStats:
    def test_missing_file_reports_and_creates_nothing(self, files,
                                                      capsys):
        __, __spec, cache = files
        assert main(["cache", "stats", "--cache", str(cache)]) == 0
        assert "(no database file)" in capsys.readouterr().out
        assert not os.path.exists(str(cache))

    def test_populated_cache(self, files, capsys):
        code, spec, cache = files
        warm(code, spec, cache)
        capsys.readouterr()
        assert main(["cache", "stats", "--cache", str(cache)]) == 0
        out = capsys.readouterr().out
        assert "schema version: 3" in out
        assert "prover results:" in out
        assert "function units:" in out

    def test_json_stats(self, files, capsys):
        code, spec, cache = files
        warm(code, spec, cache)
        capsys.readouterr()
        assert main(["cache", "stats", "--cache", str(cache),
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["exists"] is True
        assert payload["schema_version"] == 3
        assert payload["results"] > 0
        assert payload["units"] > 0
        assert payload["size_bytes"] > 0

    def test_json_stats_missing_file(self, files, capsys):
        __, __spec, cache = files
        assert main(["cache", "stats", "--cache", str(cache),
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["exists"] is False
        assert payload["results"] == 0


class TestClear:
    def test_clear_drops_rows_keeps_file(self, files, capsys):
        code, spec, cache = files
        warm(code, spec, cache)
        capsys.readouterr()
        assert main(["cache", "clear", "--cache", str(cache)]) == 0
        assert "cleared" in capsys.readouterr().out
        assert os.path.exists(str(cache))
        assert main(["cache", "stats", "--cache", str(cache),
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["results"] == 0
        assert payload["units"] == 0


class TestGc:
    def test_gc_within_budget_is_a_no_op(self, files, capsys):
        code, spec, cache = files
        warm(code, spec, cache)
        capsys.readouterr()
        assert main(["cache", "gc", "--cache", str(cache),
                     "--max-mb", "64"]) == 0
        out = capsys.readouterr().out
        assert "dropped 0 function units, 0 prover results" in out

    def test_gc_zero_budget_empties_the_store(self, files, capsys):
        code, spec, cache = files
        warm(code, spec, cache)
        capsys.readouterr()
        assert main(["cache", "gc", "--cache", str(cache),
                     "--max-mb", "0"]) == 0
        assert main(["cache", "stats", "--cache", str(cache),
                     "--json"]) == 0
        lines = capsys.readouterr().out.splitlines()
        payload = json.loads("\n".join(
            lines[lines.index("{"):]))
        assert payload["results"] == 0
        assert payload["units"] == 0
