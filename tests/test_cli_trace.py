"""CLI surface of the tracing layer: ``check --trace``, the
``REPRO_TRACE`` environment variable, and the ``trace`` subcommands."""

import json

import pytest

from repro.cli import main
from repro.programs.sum_array import SOURCE, SPEC
from repro.trace import load_trace


@pytest.fixture()
def files(tmp_path):
    code = tmp_path / "sum.s"
    code.write_text(SOURCE)
    spec = tmp_path / "sum.policy"
    spec.write_text(SPEC)
    return code, spec, tmp_path


class TestCheckTrace:
    def test_check_with_trace_flag(self, files, capsys):
        code, spec, tmp = files
        trace = tmp / "trace.jsonl"
        assert main(["check", str(code), str(spec),
                     "--trace", str(trace)]) == 0
        assert "SAFE" in capsys.readouterr().out
        records = load_trace(str(trace))
        assert any(r["name"] == "check" for r in records)

    def test_trace_does_not_perturb_json_verdict(self, files, capsys):
        code, spec, tmp = files
        assert main(["check", str(code), str(spec), "--json"]) == 0
        plain = json.loads(capsys.readouterr().out)
        assert main(["check", str(code), str(spec), "--json",
                     "--trace", str(tmp / "t.jsonl")]) == 0
        traced = json.loads(capsys.readouterr().out)
        from repro.analysis.report import verdict_projection
        assert verdict_projection(plain) == verdict_projection(traced)

    def test_repro_trace_env(self, files, monkeypatch, capsys):
        code, spec, tmp = files
        trace = tmp / "env.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(trace))
        assert main(["check", str(code), str(spec)]) == 0
        assert trace.exists()
        assert load_trace(str(trace))


class TestTraceSubcommands:
    @pytest.fixture()
    def trace_file(self, files, capsys):
        code, spec, tmp = files
        trace = tmp / "trace.jsonl"
        main(["check", str(code), str(spec), "--trace", str(trace)])
        capsys.readouterr()  # discard check output
        return trace

    def test_validate_ok(self, trace_file, capsys):
        assert main(["trace", "validate", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "schema valid" in out

    def test_validate_rejects_corrupt_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"not": "a trace record"}\n')
        assert main(["trace", "validate", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_summarize_text(self, trace_file, capsys):
        assert main(["trace", "summarize", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "certified" in out
        assert "global_verification" in out

    def test_summarize_json(self, trace_file, capsys):
        assert main(["trace", "summarize", str(trace_file),
                     "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["check"]["verdict"] == "certified"
        assert summary["obligations"]["total"] > 0
        assert summary["queries"]["total"] > 0

    def test_summarize_missing_file_exits_two(self, capsys):
        assert main(["trace", "summarize", "/nonexistent.jsonl"]) == 2
        assert "error:" in capsys.readouterr().err
