"""CLI tests (direct main() invocation; no subprocesses)."""

import json

import pytest

from repro.cli import main
from repro.programs.sum_array import SOURCE, SPEC


@pytest.fixture()
def files(tmp_path):
    code = tmp_path / "sum.s"
    code.write_text(SOURCE)
    spec = tmp_path / "sum.policy"
    spec.write_text(SPEC)
    return code, spec, tmp_path


class TestCheck:
    def test_safe_program_exits_zero(self, files, capsys):
        code, spec, __ = files
        assert main(["check", str(code), str(spec)]) == 0
        out = capsys.readouterr().out
        assert "SAFE" in out

    def test_unsafe_program_exits_one(self, files, capsys):
        code, spec, tmp = files
        buggy = tmp / "buggy.s"
        buggy.write_text(SOURCE.replace("bl 6", "ble 6"))
        assert main(["check", str(buggy), str(spec)]) == 1
        assert "VIOLATION" in capsys.readouterr().out

    def test_json_output(self, files, capsys):
        code, spec, __ = files
        assert main(["check", str(code), str(spec), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["safe"] is True
        assert payload["verdict"] == "certified"
        assert payload["arch"] == "sparc"
        assert payload["instructions"] == 13
        assert payload["violations"] == []
        from repro import __version__
        assert payload["version"] == __version__

    def test_verbose_lists_proofs(self, files, capsys):
        code, spec, __ = files
        assert main(["check", str(code), str(spec), "--verbose"]) == 0
        assert "PROVED" in capsys.readouterr().out

    def test_bad_spec_exits_two(self, files, capsys):
        code, __, tmp = files
        bad = tmp / "bad.policy"
        bad.write_text("frobnicate")
        assert main(["check", str(code), str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_file_exits_two(self, files, capsys):
        __, spec, __tmp = files
        assert main(["check", "/nonexistent.s", str(spec)]) == 2

    def test_malformed_assembly_exits_two(self, files, capsys):
        __, spec, tmp = files
        garbage = tmp / "garbage.s"
        garbage.write_text("1: this is not sparc\n")
        assert main(["check", str(garbage), str(spec)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_arch_exits_two(self, files, capsys):
        code, spec, __ = files
        with pytest.raises(SystemExit) as exc:
            main(["check", str(code), str(spec), "--arch", "m68k"])
        assert exc.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_unreadable_binary_exits_two(self, files, capsys):
        __, spec, tmp = files
        # Word count not a multiple of 4: undecodable as machine code.
        bad = tmp / "bad.bin"
        bad.write_bytes(b"\xff\xff\xff")
        assert main(["check", str(bad), str(spec), "--binary"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_directory_as_code_exits_two(self, files, capsys):
        __, spec, tmp = files
        assert main(["check", str(tmp), str(spec)]) == 2
        assert "error:" in capsys.readouterr().err


class TestBinaryPipeline:
    def test_asm_disasm_check_roundtrip(self, files, capsys):
        code, spec, tmp = files
        binary = tmp / "sum.bin"
        assert main(["asm", str(code), "-o", str(binary)]) == 0
        assert binary.stat().st_size == 13 * 4
        capsys.readouterr()

        assert main(["disasm", str(binary)]) == 0
        listing = capsys.readouterr().out
        assert "ld [%o2+%g2], %g2" in listing

        # Checking the *binary* gives the same verdict.
        assert main(["check", str(binary), str(spec), "--binary"]) == 0


class TestCfgAndRun:
    def test_cfg_dot(self, files, capsys):
        code, __, __tmp = files
        assert main(["cfg", str(code), "--dot"]) == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_run_with_registers_and_memory(self, files, capsys):
        code, __, __tmp = files
        rc = main(["run", str(code),
                   "--reg", "%o0=0x20000", "--reg", "%o1=3",
                   "--mem", "0x20000=10", "--mem", "0x20004=20",
                   "--mem", "0x20008=12"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "%o0=0x2a" in out  # 10+20+12 = 42
