"""``repro fuzz run | reduce | replay`` end to end through the CLI."""

import json

from repro.cli import main


class TestFuzzRun:
    def test_honest_run_exits_zero(self, tmp_path, capsys):
        out = tmp_path / "findings.jsonl"
        code = main(["fuzz", "run", "--arch", "sparc", "--count", "2",
                     "--vectors", "2", "--quiet", "--out", str(out),
                     "--check-timeout", "60"])
        assert code == 0
        assert "OK (no failing findings)" in capsys.readouterr().out
        assert out.exists()

    def test_weakened_run_exits_nonzero(self, tmp_path, capsys):
        out = tmp_path / "findings.jsonl"
        code = main(["fuzz", "run", "--arch", "sparc", "--count", "3",
                     "--vectors", "2", "--quiet", "--out", str(out),
                     "--check-timeout", "60",
                     "--unsound-assume", "array-bounds"])
        assert code == 1
        stdout = capsys.readouterr().out
        assert "FAIL" in stdout and "SOUNDNESS" in stdout

    def test_both_arches_with_jobs(self, tmp_path, capsys):
        out = tmp_path / "findings.jsonl"
        code = main(["fuzz", "run", "--arch", "sparc", "--arch",
                     "riscv", "--jobs", "2", "--count", "2",
                     "--vectors", "2", "--quiet", "--out", str(out),
                     "--check-timeout", "60"])
        assert code == 0
        assert "sparc+riscv" in capsys.readouterr().out


class TestFuzzReduceAndReplay:
    def test_reduce_writes_corpus_entry_and_replay_passes(
            self, tmp_path, capsys):
        findings = tmp_path / "findings.jsonl"
        corpus = tmp_path / "entry.json"
        assert main(["fuzz", "run", "--arch", "sparc", "--count", "1",
                     "--vectors", "2", "--quiet",
                     "--out", str(findings), "--check-timeout", "60",
                     "--unsound-assume", "array-bounds"]) == 1
        assert main(["fuzz", "reduce", str(findings),
                     "--unsound-assume", "array-bounds",
                     "--check-timeout", "60", "--name", "cli-test",
                     "--out", str(corpus)]) == 0
        stdout = capsys.readouterr().out
        assert "reduced seed 0" in stdout
        entry = json.loads(corpus.read_text())
        assert entry["name"] == "cli-test"
        assert entry["expected"]  # honest classes re-recorded
        assert main(["fuzz", "replay", str(corpus),
                     "--check-timeout", "60"]) == 0
        assert "0 failures" in capsys.readouterr().out

    def test_reduce_without_reducible_finding(self, tmp_path):
        findings = tmp_path / "findings.jsonl"
        assert main(["fuzz", "run", "--arch", "sparc", "--count", "1",
                     "--vectors", "2", "--quiet",
                     "--out", str(findings),
                     "--check-timeout", "60"]) == 0
        assert main(["fuzz", "reduce", str(findings)]) == 2

    def test_replay_flags_stale_expectations(self, tmp_path, capsys):
        entry = {
            "name": "stale", "description": "expected class is wrong",
            "sketch": {"seed": 1, "array_size": 4,
                       "array_writable": False,
                       "statements": [["load", "t0", 9]]},
            "vector_seed": 1, "vector_count": 2,
            "expected": {"sparc": "soundness"},
            "expect_parity": False,
        }
        path = tmp_path / "stale.json"
        path.write_text(json.dumps(entry))
        assert main(["fuzz", "replay", str(path),
                     "--check-timeout", "60"]) == 1
        assert "FAIL" in capsys.readouterr().out
