"""RV32I-vs-SPARC emulator parity on the exemplar and random sketches:
the same sketch, lowered through both frontends and executed on both
concrete emulators, must produce identical observables."""

import pytest

from repro.fuzz.generator import (
    bubble_sort_sketch, example_sketches, generate_sketch,
    hash_lookup_sketch, make_vectors, sum_sketch,
)
from repro.fuzz.oracle import compare_archs, run_concrete


def observables(sketch, vector):
    sparc = run_concrete(sketch, "sparc", vector)
    riscv = run_concrete(sketch, "riscv", vector)
    assert sparc.clean and riscv.clean
    return sparc.observables, riscv.observables


class TestExemplars:
    @pytest.mark.parametrize("name,sketch", example_sketches())
    def test_parity(self, name, sketch):
        vectors = make_vectors(99, sketch.array_size, 4)
        assert compare_archs(sketch, vectors) == []

    def test_sum_is_the_sum(self):
        sketch = sum_sketch(8)
        vector = [3, -1, 4, 1, -5, 9, 2, 6]
        sparc, riscv = observables(sketch, vector)
        assert sparc == riscv
        assert sparc.temps[0] == sum(vector)

    def test_bubble_sort_sorts_on_both(self):
        sketch = bubble_sort_sketch(8)
        vector = [5, -3, 9, 0, 2, 2, -7, 4]
        sparc, riscv = observables(sketch, vector)
        assert sparc == riscv
        assert list(sparc.memory) == sorted(vector)

    def test_hash_lookup_probes_in_range(self):
        sketch = hash_lookup_sketch(8)
        vector = [0x1234567, 1, 2, 3, 4, 5, 6, 7]
        sparc, riscv = observables(sketch, vector)
        assert sparc == riscv
        # The masked probe index stays inside the array.
        assert 0 <= sparc.temps[1] < 8


class TestRandomSketches:
    @pytest.mark.parametrize("seed", range(16))
    def test_cross_arch_differential(self, seed):
        sketch = generate_sketch(seed)
        vectors = make_vectors(seed, sketch.array_size, 3)
        assert compare_archs(sketch, vectors) == []

    def test_violating_runs_agree_on_the_fact(self):
        """A sketch with an OOB access violates on *both* emulators at
        the same address/size/kind (indices legitimately differ)."""
        from repro.fuzz.generator import ARRAY_BASE, LoadElem, Sketch
        sketch = Sketch(seed=-50, array_size=4, array_writable=False,
                        statements=(LoadElem("t0", 5),))
        sparc = run_concrete(sketch, "sparc", [0, 0, 0, 0])
        riscv = run_concrete(sketch, "riscv", [0, 0, 0, 0])
        assert sparc.violation is not None
        assert riscv.violation is not None
        assert sparc.violation.address == riscv.violation.address \
            == ARRAY_BASE + 20
        assert sparc.violation.size == riscv.violation.size == 4
        assert sparc.violation.kind == riscv.violation.kind == "load"
