"""Tier-1 replay of the committed corpus: every minimized reproducer
in ``tests/fuzz/corpus/`` must still classify exactly as recorded, and
(unless marked otherwise) hold cross-architecture parity."""

import json
import os

import pytest

from repro.errors import FuzzError
from repro.fuzz.harness import corpus_paths, replay_entry

CORPUS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "corpus")
ENTRIES = corpus_paths([CORPUS_DIR])


def load(path):
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


class TestCorpus:
    def test_corpus_is_seeded(self):
        assert len(ENTRIES) >= 5

    @pytest.mark.parametrize(
        "path", ENTRIES,
        ids=[os.path.splitext(os.path.basename(p))[0]
             for p in ENTRIES])
    def test_entry_replays(self, path):
        problems = replay_entry(load(path), check_timeout_s=120.0)
        assert problems == []

    @pytest.mark.parametrize(
        "path", ENTRIES,
        ids=[os.path.splitext(os.path.basename(p))[0]
             for p in ENTRIES])
    def test_entry_well_formed(self, path):
        entry = load(path)
        assert entry["name"]
        assert entry["description"]
        assert set(entry["expected"]) <= {"sparc", "riscv"}
        assert entry["vector_count"] >= 1
        # Committed reproducers stay small — that is the point.
        for arch, count in entry.get("instructions", {}).items():
            assert count <= 40

    def test_malformed_entry_raises(self):
        with pytest.raises(FuzzError):
            replay_entry({"name": "bad"})
