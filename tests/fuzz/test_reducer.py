"""Delta-debugging reduction of interesting sketches."""

import pytest

from repro.fuzz.generator import (
    ConstOp, If, LoadElem, Loop, Op, SetConst, Sketch, StoreElem,
    generate_sketch, instruction_count,
)
from repro.fuzz.oracle import run_concrete
from repro.fuzz.reducer import reduce_sketch


def violates(sketch, arch="sparc"):
    """Runtime-only interestingness: some access escapes the policy."""
    run = run_concrete(sketch, arch, [0] * sketch.array_size)
    return run.violation is not None


class TestReduction:
    def test_reduces_to_single_oob_access(self):
        """A large random sketch with an OOB access shrinks to (nearly)
        the single faulting instruction."""
        base = generate_sketch(0)   # known to violate at runtime
        assert violates(base)
        reduced = reduce_sketch(base, violates)
        assert violates(reduced)
        assert len(reduced.statements) == 1
        assert instruction_count(reduced, "sparc") <= 4

    def test_result_is_local_minimum(self):
        base = generate_sketch(2)
        assert violates(base)
        reduced = reduce_sketch(base, violates)
        from repro.fuzz.reducer import _sketch_variants
        for variant in _sketch_variants(reduced):
            assert not violates(variant)

    def test_predicate_never_broken(self):
        base = generate_sketch(5)
        assert violates(base)
        seen = []

        def watched(candidate):
            ok = violates(candidate)
            seen.append(ok)
            return ok
        reduced = reduce_sketch(base, watched)
        assert violates(reduced)
        assert any(seen)      # some variants were accepted
        assert not all(seen)  # and some were refuted

    def test_loop_unwrapped_when_counter_unused(self):
        sketch = Sketch(seed=-70, array_size=4, array_writable=False,
                        statements=(
                            SetConst("t0", 1),
                            Loop("c0", 3, (LoadElem("t1", 5),)),
                        ))
        assert violates(sketch)
        reduced = reduce_sketch(sketch, violates)
        assert len(reduced.statements) == 1
        assert isinstance(reduced.statements[0], LoadElem)
        assert not any(isinstance(s, Loop) for s in reduced.statements)

    def test_counter_index_frozen_to_constant(self):
        """An OOB reached through a loop counter reduces below the
        loop: the register index is frozen to a constant, the loop
        unwraps, and the array shrinks."""
        sketch = Sketch(seed=-71, array_size=4, array_writable=False,
                        statements=(
                            Loop("c0", 6, (LoadElem("t0", "c0"),)),
                        ))
        assert violates(sketch)
        reduced = reduce_sketch(sketch, violates)
        assert instruction_count(reduced, "sparc") <= 4
        assert not any(isinstance(s, Loop) for s in reduced.statements)

    def test_constants_shrink(self):
        def big_const(candidate):
            return any(isinstance(s, SetConst) and s.value >= 10
                       for s in candidate.statements)
        sketch = Sketch(seed=-72, array_size=4, array_writable=False,
                        statements=(SetConst("t0", 1000),
                                    SetConst("t1", 3)))
        reduced = reduce_sketch(sketch, big_const)
        assert reduced.statements == (SetConst("t0", 10),)

    def test_crashing_variant_rejected(self):
        sketch = Sketch(seed=-73, array_size=4, array_writable=False,
                        statements=(SetConst("t0", 4),
                                    SetConst("t1", 2)))

        def brittle(candidate):
            if len(candidate.statements) < 2:
                raise RuntimeError("boom")
            return True
        reduced = reduce_sketch(sketch, brittle)
        # Deletions crash the predicate, so only in-place shrinks land.
        assert len(reduced.statements) == 2

    def test_if_branches_simplify(self):
        sketch = Sketch(seed=-74, array_size=4, array_writable=True,
                        statements=(
                            If("==", "t0", "t1",
                               (StoreElem("t0", 9),),
                               (Op("add", "t2", "t0", "t1"),)),
                        ))
        assert violates(sketch)
        reduced = reduce_sketch(sketch, violates)
        assert not any(isinstance(s, If) for s in reduced.statements)

    def test_max_rounds_respected(self):
        base = generate_sketch(0)
        reduced = reduce_sketch(base, violates, max_rounds=1)
        # Exactly one accepted step: strictly smaller, not minimal.
        assert reduced != base
