"""Generator determinism, dual lowering, and serialization."""

import os
import subprocess
import sys

import pytest

from repro.errors import FuzzError
from repro.fuzz.generator import (
    ARCHS, LoadElem, Loop, Sketch, StoreElem, assemble,
    generate_sketch, instruction_count, lower, make_vectors,
    sketch_from_obj, sketch_to_obj, spec_text,
)

SEEDS = range(30)


class TestDeterminism:
    def test_same_seed_same_sketch(self):
        for seed in SEEDS:
            assert generate_sketch(seed) == generate_sketch(seed)

    def test_same_seed_same_assembly_both_arches(self):
        for seed in SEEDS:
            for arch in ARCHS:
                assert lower(generate_sketch(seed), arch) \
                    == lower(generate_sketch(seed), arch)

    def test_distinct_seeds_mostly_distinct(self):
        texts = {lower(generate_sketch(seed), "sparc")
                 for seed in SEEDS}
        assert len(texts) >= len(SEEDS) - 2

    def test_vectors_deterministic_and_shaped(self):
        a = make_vectors(17, 8, 4)
        b = make_vectors(17, 8, 4)
        assert a == b
        assert len(a) == 4 and all(len(v) == 8 for v in a)
        for vector in a:
            for value in vector:
                assert -(1 << 31) <= value < (1 << 31)
        assert make_vectors(18, 8, 4) != a

    def test_cross_process_cross_hashseed_byte_identity(self):
        """The full determinism claim: two fresh interpreter processes
        with different PYTHONHASHSEED values produce byte-identical
        lowered programs for the same seeds."""
        script = (
            "import hashlib\n"
            "from repro.fuzz.generator import generate_sketch, lower\n"
            "blob = b''\n"
            "for seed in range(20):\n"
            "    sk = generate_sketch(seed)\n"
            "    for arch in ('sparc', 'riscv'):\n"
            "        blob += lower(sk, arch).encode()\n"
            "print(hashlib.sha256(blob).hexdigest())\n"
        )
        digests = []
        for hashseed in ("1", "4242"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed)
            src = os.path.join(os.path.dirname(os.path.dirname(
                os.path.dirname(os.path.abspath(__file__)))), "src")
            env["PYTHONPATH"] = src + os.pathsep \
                + env.get("PYTHONPATH", "")
            out = subprocess.run(
                [sys.executable, "-c", script], env=env,
                capture_output=True, text=True, check=True)
            digests.append(out.stdout.strip())
        assert digests[0] == digests[1]
        assert len(digests[0]) == 64


class TestLowering:
    def test_both_lowerings_assemble(self):
        for seed in SEEDS:
            sketch = generate_sketch(seed)
            for arch in ARCHS:
                assert instruction_count(sketch, arch) > 0

    def test_matched_pair_from_one_seed(self):
        sketch = generate_sketch(3)
        sparc = lower(sketch, "sparc")
        riscv = lower(sketch, "riscv")
        assert sparc != riscv
        assert "retl" in sparc and "nop" in sparc   # delay slots
        assert "ret" in riscv and "nop" not in riscv

    def test_unknown_arch_rejected(self):
        with pytest.raises(FuzzError):
            lower(generate_sketch(0), "mips")

    def test_spec_matches_policy(self):
        ro = Sketch(seed=0, array_size=8, array_writable=False,
                    statements=(LoadElem("t0", 0),))
        rw = Sketch(seed=0, array_size=4, array_writable=True,
                    statements=(StoreElem("t0", 0),))
        assert "perms ro" in spec_text(ro, "sparc")
        assert "assume n = 8" in spec_text(ro, "sparc")
        assert "perms rwo" in spec_text(rw, "riscv")
        assert "assume n = 4" in spec_text(rw, "riscv")
        assert "%o0" in spec_text(ro, "sparc")
        assert "a0" in spec_text(ro, "riscv")

    def test_programs_named(self):
        program = assemble(generate_sketch(0), "sparc", name="x.s")
        assert program.name == "x.s"


class TestSerialization:
    def test_round_trip(self):
        for seed in SEEDS:
            sketch = generate_sketch(seed)
            assert sketch_from_obj(sketch_to_obj(sketch)) == sketch

    def test_json_clean(self):
        import json
        obj = sketch_to_obj(generate_sketch(5))
        assert sketch_from_obj(json.loads(json.dumps(obj))) \
            == generate_sketch(5)

    def test_malformed_rejected(self):
        with pytest.raises(FuzzError):
            sketch_from_obj({"seed": 1})
        with pytest.raises(FuzzError):
            sketch_from_obj({"seed": 1, "array_size": 4,
                             "array_writable": False,
                             "statements": [["frobnicate", 1]]})
        with pytest.raises(FuzzError):
            sketch_from_obj({"seed": 1, "array_size": 4,
                             "array_writable": False,
                             "statements": [["loop"]]})


class TestShape:
    def test_structure_variety(self):
        """Across a modest seed range the generator exercises loops,
        conditionals, element accesses, and OOB constant indices."""
        kinds = set()
        oob_seen = False
        for seed in range(60):
            sketch = generate_sketch(seed)
            stack = list(sketch.statements)
            while stack:
                stmt = stack.pop()
                kinds.add(type(stmt).__name__)
                if isinstance(stmt, Loop):
                    stack.extend(stmt.body)
                if isinstance(stmt, (LoadElem, StoreElem)) \
                        and isinstance(stmt.index, int) \
                        and stmt.index >= sketch.array_size:
                    oob_seen = True
                if hasattr(stmt, "then_body"):
                    stack.extend(stmt.then_body)
                    stack.extend(stmt.else_body)
        assert {"SetConst", "Op", "ConstOp", "LoadElem", "Loop",
                "If"} <= kinds
        assert oob_seen
