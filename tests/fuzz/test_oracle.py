"""The concrete-execution oracle: the runtime safety monitor, the
static side, and the differential verdict classes."""

import pytest

from repro.fuzz.generator import (
    ARRAY_BASE, LoadElem, Sketch, StoreElem, generate_sketch,
    make_vectors, sum_sketch,
)
from repro.fuzz.oracle import (
    AGREE, INCOMPLETENESS, SOUNDNESS, UNDECIDED, check_options,
    classify, run_concrete, static_verdict,
)


def oob_load_sketch(index=4, size=4):
    return Sketch(seed=-60, array_size=size, array_writable=False,
                  statements=(LoadElem("t0", index),))


def ro_store_sketch():
    return Sketch(seed=-61, array_size=4, array_writable=False,
                  statements=(StoreElem("t0", 0),))


class TestMonitor:
    @pytest.mark.parametrize("arch", ("sparc", "riscv"))
    def test_oob_load_caught_with_precise_event(self, arch):
        run = run_concrete(oob_load_sketch(), arch, [1, 2, 3, 4])
        assert run.violation is not None
        assert run.violation.address == ARRAY_BASE + 16
        assert run.violation.size == 4
        assert run.violation.kind == "load"
        assert run.violation.index >= 1
        assert not run.clean

    @pytest.mark.parametrize("arch", ("sparc", "riscv"))
    def test_store_to_read_only_array_caught(self, arch):
        run = run_concrete(ro_store_sketch(), arch, [1, 2, 3, 4])
        assert run.violation is not None
        assert run.violation.address == ARRAY_BASE
        assert run.violation.kind == "store"

    @pytest.mark.parametrize("arch", ("sparc", "riscv"))
    def test_in_bounds_run_clean_with_observables(self, arch):
        sketch = Sketch(seed=-62, array_size=4, array_writable=True,
                        statements=(LoadElem("t0", 2),
                                    StoreElem("t0", 3)))
        run = run_concrete(sketch, arch, [10, 20, 30, 40])
        assert run.clean
        assert run.accesses == 2
        assert run.observables.temps[0] == 30
        assert list(run.observables.memory) == [10, 20, 30, 30]

    def test_violation_event_serializes(self):
        run = run_concrete(oob_load_sketch(), "sparc", [0, 0, 0, 0])
        event = run.violation.as_dict()
        assert event == {"address": ARRAY_BASE + 16, "size": 4,
                         "kind": "load",
                         "instruction": run.violation.index}


class TestStaticSide:
    def test_safe_program_certified(self):
        result = static_verdict(sum_sketch(8), "sparc",
                                check_options(60.0))
        assert result.safe

    def test_oob_program_rejected(self):
        result = static_verdict(oob_load_sketch(), "sparc",
                                check_options(60.0))
        assert not result.safe
        assert any(v.category == "array-bounds"
                   for v in result.violations)

    def test_overrides_validated(self):
        with pytest.raises(AttributeError):
            check_options(30.0, {"no_such_option": True})

    def test_overrides_applied(self):
        options = check_options(
            30.0, {"unsound_assume_categories": ("array-bounds",)})
        assert options.unsound_assume_categories == ("array-bounds",)
        assert options.jobs == 1 and options.cache_path is None


class TestClassification:
    def test_agree_safe(self):
        sketch = sum_sketch(8)
        verdict = classify(sketch, "sparc",
                           make_vectors(1, 8, 2),
                           options=check_options(60.0))
        assert verdict.kind == AGREE
        assert verdict.static_safe and not verdict.timed_out
        assert verdict.first_violation is None

    def test_agree_unsafe(self):
        """Rejected statically AND caught dynamically — agreement."""
        verdict = classify(oob_load_sketch(), "sparc",
                           make_vectors(1, 4, 2),
                           options=check_options(60.0))
        assert verdict.kind == AGREE
        assert not verdict.static_safe
        assert verdict.first_violation is not None

    def test_soundness_under_injected_weakening(self):
        """The deliberate checker weakening turns the OOB program into
        a certified-but-violating pair — the soundness direction."""
        options = check_options(
            60.0, {"unsound_assume_categories": ("array-bounds",)})
        verdict = classify(oob_load_sketch(), "sparc",
                           make_vectors(1, 4, 2), options=options)
        assert verdict.kind == SOUNDNESS
        assert verdict.static_safe
        assert verdict.first_violation.address == ARRAY_BASE + 16

    def test_undecided_on_timeout(self):
        verdict = classify(generate_sketch(0), "sparc",
                           make_vectors(0, generate_sketch(0).array_size, 1),
                           options=check_options(1e-6))
        assert verdict.kind == UNDECIDED
        assert verdict.timed_out

    def test_as_dict_round_trips_through_json(self):
        import json
        verdict = classify(oob_load_sketch(), "riscv",
                           make_vectors(1, 4, 2),
                           options=check_options(60.0))
        payload = json.loads(json.dumps(verdict.as_dict()))
        assert payload["class"] == AGREE
        assert payload["arch"] == "riscv"
        assert payload["runtime_violations"]
        assert payload["static_violations"]

    def test_incompleteness_classification_shape(self):
        """Synthesize the incompleteness cell directly: a rejecting
        static verdict with concretely clean runs must classify as
        incompleteness.  (The honest checker is precise on this sketch
        family, so the cell is reached by weakening the *monitor* side:
        in-bounds accesses with a rejected larger declared size.)"""
        from repro.fuzz import oracle

        sketch = oob_load_sketch(index=1, size=2)
        # Statically pretend the array has one element (reject), while
        # the monitor sees the true two-element policy (clean).
        real = oracle.spec_text

        def shrunk(sk, arch):
            return real(sk, arch).replace("assume n = 2",
                                          "assume n = 1")
        oracle.spec_text = shrunk
        try:
            verdict = classify(sketch, "sparc", make_vectors(1, 2, 2),
                               options=check_options(60.0))
        finally:
            oracle.spec_text = real
        assert verdict.kind == INCOMPLETENESS
        assert not verdict.static_safe
        assert all(run.clean for run in verdict.runs)
