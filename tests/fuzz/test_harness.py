"""Campaign harness: budgets, pool fan-out determinism, findings
files, and the injected-weakening self-test (the fuzzer must find and
reduce a real soundness violation when the checker is deliberately
weakened)."""

import json

import pytest

from repro.errors import FuzzError
from repro.fuzz.generator import instruction_count
from repro.fuzz.harness import (
    ERROR, CampaignConfig, examine_seed, load_findings,
    reduce_finding, render_summary, run_campaign,
)
from repro.fuzz.oracle import AGREE, SOUNDNESS

#: Honest-checker campaigns in this module reuse one small config.
QUICK = dict(budget_count=3, vectors=2, check_timeout_s=60.0)

#: The deliberate weakening: assume array-bounds obligations instead
#: of proving them (see CheckerOptions.unsound_assume_categories).
WEAKEN = {"unsound_assume_categories": ("array-bounds",)}


class TestConfig:
    def test_defaults_budget(self):
        config = CampaignConfig()
        assert config.budget_count == 50

    def test_explicit_time_budget_keeps_count_unbounded(self):
        config = CampaignConfig(budget_seconds=1.0)
        assert config.budget_count is None

    def test_unknown_arch_rejected(self):
        with pytest.raises(FuzzError):
            CampaignConfig(archs=("sparc", "vax"))
        with pytest.raises(FuzzError):
            CampaignConfig(archs=())


class TestExamineSeed:
    def test_agreeing_seed(self):
        config = CampaignConfig(**QUICK)
        records = examine_seed(1, config)
        # One record per arch; no divergence record when archs agree.
        assert [r["arch"] for r in records] == ["sparc", "riscv"]
        assert all(r["class"] == AGREE for r in records)
        assert all("sketch" not in r for r in records)
        assert all(r["seed"] == 1 for r in records)

    def test_findings_carry_provenance(self):
        config = CampaignConfig(archs=("sparc",),
                                checker_overrides=WEAKEN, **QUICK)
        records = examine_seed(0, config)
        finding = records[0]
        assert finding["class"] == SOUNDNESS
        assert finding["sketch"]["seed"] == 0
        assert finding["vector_count"] == 2
        assert finding["instructions"] > 0
        assert finding["runtime_violations"]

    def test_crash_becomes_error_record(self):
        config = CampaignConfig(
            archs=("sparc",),
            checker_overrides={"no_such_option": 1}, **QUICK)
        records = examine_seed(0, config)
        assert records[0]["class"] == ERROR
        assert "traceback" in records[0]


class TestCampaign:
    def test_honest_campaign_all_agree(self, tmp_path):
        out = tmp_path / "findings.jsonl"
        config = CampaignConfig(findings_path=str(out), **QUICK)
        result = run_campaign(config)
        assert result.ok
        assert result.summary["seeds"] == 3
        assert result.summary["counts"] == {AGREE: 6}
        assert result.summary["failing"] == 0
        assert load_findings(str(out)) == []
        header = json.loads(out.read_text().splitlines()[0])
        assert header["type"] == "summary" and header["seeds"] == 3

    def test_pool_matches_serial(self, tmp_path):
        serial = tmp_path / "serial.jsonl"
        pooled = tmp_path / "pooled.jsonl"
        base = dict(archs=("sparc",), checker_overrides=WEAKEN,
                    budget_count=6, vectors=2, check_timeout_s=60.0,
                    chunk_size=2)
        run_campaign(CampaignConfig(jobs=1, findings_path=str(serial),
                                    **base))
        result = run_campaign(CampaignConfig(
            jobs=2, findings_path=str(pooled), **base))
        if result.summary["pool_fallback"]:
            pytest.skip("process pool unavailable here")
        assert load_findings(str(serial)) == load_findings(str(pooled))

    def test_zero_time_budget_examines_nothing(self):
        config = CampaignConfig(budget_seconds=0.0)
        result = run_campaign(config)
        assert result.summary["seeds"] == 0

    def test_seed_start_shifts_the_stream(self):
        config = CampaignConfig(seed_start=2, **QUICK)
        result = run_campaign(config)
        assert result.summary["seeds"] == 3
        assert result.summary["seed_start"] == 2

    def test_trace_written_and_valid(self, tmp_path):
        from repro.trace import load_trace
        trace = tmp_path / "fuzz.jsonl"
        config = CampaignConfig(archs=("sparc",),
                                checker_overrides=WEAKEN,
                                trace_path=str(trace), **QUICK)
        result = run_campaign(config)
        assert not result.ok
        records = load_trace(str(trace))
        names = [r["name"] for r in records]
        assert "fuzz:campaign" in names
        assert "fuzz:finding" in names

    def test_render_summary_readable(self):
        result = run_campaign(CampaignConfig(**QUICK))
        text = render_summary(result.summary)
        assert "3 seeds" in text
        assert "OK" in text


class TestSelfTest:
    """ISSUE acceptance: with the checker deliberately weakened, the
    fuzzer finds the soundness violation and reduces it to a tiny
    reproducer."""

    def test_weakened_checker_caught_and_reduced(self):
        config = CampaignConfig(archs=("sparc",),
                                checker_overrides=WEAKEN,
                                budget_count=6, vectors=2,
                                check_timeout_s=60.0)
        result = run_campaign(config)
        assert not result.ok
        soundness = [f for f in result.findings
                     if f["class"] == SOUNDNESS]
        assert soundness, "weakened checker must yield soundness bugs"
        reduced = reduce_finding(soundness[0], config)
        assert instruction_count(reduced, "sparc") <= 8
        # The reproducer still witnesses the soundness bug...
        from repro.fuzz.harness import finding_predicate
        assert finding_predicate(soundness[0], config)(reduced)
        # ...and the honest checker correctly rejects it.
        honest = CampaignConfig(archs=("sparc",), budget_count=1,
                                check_timeout_s=60.0)
        assert not finding_predicate(soundness[0], honest)(reduced)

    def test_non_reproducing_finding_rejected(self):
        config = CampaignConfig(archs=("sparc",),
                                checker_overrides=WEAKEN, **QUICK)
        finding = [r for r in examine_seed(0, config)
                   if r["class"] == SOUNDNESS][0]
        honest = CampaignConfig(archs=("sparc",), **QUICK)
        with pytest.raises(FuzzError):
            reduce_finding(finding, honest)
