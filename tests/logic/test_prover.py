"""Prover tests: validity, quantifiers, caching, and the paper's
Section 5.2.2 derivation."""

from hypothesis import given, settings, strategies as st

from repro.logic import (
    Prover, conj, congruent, disj, eq, exists, forall, ge, gt, implies,
    le, lt, ne, neg, TRUE, FALSE,
)
from repro.logic.terms import Linear


def v(name):
    return Linear.var(name)


class TestValidity:
    def setup_method(self):
        self.prover = Prover()

    def test_reflexivity(self):
        assert self.prover.is_valid(ge(v("x"), v("x")))

    def test_trichotomy(self):
        x, y = v("x"), v("y")
        assert self.prover.is_valid(disj(lt(x, y), eq(x, y), gt(x, y)))

    def test_transitivity(self):
        x, y, z = v("x"), v("y"), v("z")
        assert self.prover.is_valid(
            implies(conj(lt(x, y), lt(y, z)), lt(x, z)))

    def test_integer_density_gap(self):
        # Over the integers there is nothing strictly between x and x+1.
        x, y = v("x"), v("y")
        assert not self.prover.is_satisfiable(
            conj(lt(x, y), lt(y, x + 1)))

    def test_not_valid_with_free_variables(self):
        assert not self.prover.is_valid(lt(v("x"), v("n")))

    def test_congruence_validity(self):
        x = v("x")
        assert self.prover.is_valid(
            implies(congruent(x, 4), congruent(x, 2)))
        assert not self.prover.is_valid(
            implies(congruent(x, 2), congruent(x, 4)))

    def test_scaled_congruence(self):
        x = v("x")
        assert self.prover.is_valid(congruent(x.scale(4), 4))


class TestQuantifiers:
    def setup_method(self):
        self.prover = Prover()

    def test_forall_exists_alternation(self):
        assert self.prover.is_valid(
            forall(["x"], exists(["y"], gt(v("y"), v("x")))))

    def test_exists_forall_unsatisfiable(self):
        assert not self.prover.is_satisfiable(
            exists(["x"], forall(["y"], ge(v("x"), v("y")))))

    def test_exists_witness(self):
        assert self.prover.is_valid(
            exists(["x"], conj(ge(v("x"), 3), le(v("x"), 3))))

    def test_forall_vacuous_guard(self):
        # forall h: (h >= 1 and h <= 0) -> false  is valid.
        h = v("h")
        assert self.prover.is_valid(
            forall(["h"], implies(conj(ge(h, 1), le(h, 0)), FALSE)))

    def test_quantifier_elimination_produces_equivalent(self):
        f = exists(["x"], conj(ge(v("x"), v("y")), le(v("x"), v("z"))))
        qf = self.prover.eliminate_quantifiers(f)
        # exists x in [y, z] iff y <= z.
        assert self.prover.equivalent(qf, le(v("y"), v("z")))

    def test_guarded_havoc_shape(self):
        # The wlp encoding of srl: forall q: 4q <= x <= 4q+3 -> q >= 0,
        # valid exactly when x >= 0 cannot be contradicted... check a
        # concrete instance: x = 7 -> q = 1.
        x, q = v("x"), v("q")
        f = forall(["q"], implies(
            conj(le(q.scale(4), x), le(x, q.scale(4) + 3)), ge(q, 0)))
        assert self.prover.is_valid(f.substitute("x", Linear.const(7)))
        assert not self.prover.is_valid(
            f.substitute("x", Linear.const(-5)))


class TestPaperDerivation:
    """The Section 5.2.2 worked example at the logic level."""

    def setup_method(self):
        self.prover = Prover()

    def test_invariant_implies_bound(self):
        g3, o1, n = v("%g3"), v("%o1"), v("n")
        invariant = conj(lt(g3, n), le(o1, n))
        assert self.prover.implies(invariant, lt(g3, n))

    def test_w0_does_not_imply_w1(self):
        g3, o1, n = v("%g3"), v("%o1"), v("n")
        w0 = lt(g3, n)
        w1 = implies(lt(g3 + 1, o1), lt(g3 + 1, n))
        assert not self.prover.implies(w0, w1)

    def test_generalized_w1_closes_the_chain(self):
        g3, o1, n = v("%g3"), v("%o1"), v("n")
        w0 = lt(g3, n)
        w1g = le(o1, n)  # the generalization %o1 <= n
        w2 = w1g         # o1, n loop-invariant
        assert self.prover.implies(conj(w0, w1g), w2)

    def test_entry_condition(self):
        o0, o1, n = v("%o0"), v("%o1"), v("n")
        init = conj(ge(n, 1), eq(n, o1), ge(o0, 1), congruent(o0, 4))
        # W(0) on entry: 0 < n after the clr.
        assert self.prover.implies(init, gt(n, 0))


class TestCaching:
    def test_cache_hits_counted(self):
        prover = Prover(enable_cache=True)
        f = lt(v("x"), v("y"))
        prover.is_valid(f)
        before = prover.stats.cache_hits
        prover.is_valid(f)
        assert prover.stats.cache_hits > before

    def test_cache_can_be_disabled(self):
        prover = Prover(enable_cache=False)
        f = lt(v("x"), v("y"))
        prover.is_valid(f)
        prover.is_valid(f)
        assert prover.stats.cache_hits == 0

    def test_query_counters(self):
        prover = Prover()
        prover.is_valid(TRUE)
        assert prover.stats.validity_queries == 1
        assert prover.stats.satisfiability_queries == 1


_small_formula = st.recursive(
    st.builds(
        lambda coeffs, const, rel: rel(Linear(coeffs, const), 0),
        st.dictionaries(st.sampled_from(["p", "q"]),
                        st.integers(-4, 4), min_size=1, max_size=2),
        st.integers(-8, 8),
        st.sampled_from([ge, le, eq, lt, gt])),
    lambda children: st.one_of(
        st.builds(lambda a, b: conj(a, b), children, children),
        st.builds(lambda a, b: disj(a, b), children, children),
        st.builds(neg, children)),
    max_leaves=6)


class TestProverProperties:
    @given(_small_formula)
    @settings(max_examples=100, deadline=None)
    def test_excluded_middle(self, f):
        prover = Prover()
        assert prover.is_valid(disj(f, neg(f)))

    @given(_small_formula)
    @settings(max_examples=100, deadline=None)
    def test_not_both_valid(self, f):
        prover = Prover()
        assert not (prover.is_valid(f) and prover.is_valid(neg(f)))

    @given(_small_formula)
    @settings(max_examples=60, deadline=None)
    def test_valid_implies_satisfiable(self, f):
        prover = Prover()
        if prover.is_valid(f):
            assert prover.is_satisfiable(f)

    @given(_small_formula)
    @settings(max_examples=60, deadline=None)
    def test_qe_of_closed_exists_matches_satisfiability(self, f):
        prover = Prover()
        free = sorted(f.free_variables())
        closed = exists(free, f) if free else f
        assert prover.is_satisfiable(closed) == prover.is_satisfiable(f)
