"""Property tests of quantifier elimination: the eliminated formula is
equivalent to the original on every ground instance."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.logic import Prover, conj, disj, eq, exists, forall, ge, le, lt
from repro.logic.formula import Cong, Eq, Formula, Geq
from repro.logic.normalize import to_nnf
from repro.logic.terms import Linear

_VARS = ["x", "y", "q"]

_atoms = st.builds(
    lambda coeffs, const, kind, mod: (
        Geq(Linear(coeffs, const)) if kind == 0
        else Eq(Linear(coeffs, const)) if kind == 1
        else Cong(Linear(coeffs, const), mod)),
    st.dictionaries(st.sampled_from(_VARS), st.integers(-3, 3),
                    min_size=1, max_size=2),
    st.integers(-6, 6),
    st.integers(0, 2),
    st.sampled_from([2, 3, 4]),
)

_qf = st.recursive(
    _atoms,
    lambda children: st.one_of(
        st.builds(lambda a, b: conj(a, b), children, children),
        st.builds(lambda a, b: disj(a, b), children, children)),
    max_leaves=4)


def _evaluate(f: Formula, env) -> bool:
    from repro.logic.formula import (
        And, Exists, FalseFormula, Forall, Not, Or, TrueFormula,
    )
    if isinstance(f, TrueFormula):
        return True
    if isinstance(f, FalseFormula):
        return False
    if isinstance(f, Geq):
        return f.term.evaluate(env) >= 0
    if isinstance(f, Eq):
        return f.term.evaluate(env) == 0
    if isinstance(f, Cong):
        return f.term.evaluate(env) % f.modulus == 0
    if isinstance(f, And):
        return all(_evaluate(p, env) for p in f.parts)
    if isinstance(f, Or):
        return any(_evaluate(p, env) for p in f.parts)
    if isinstance(f, Not):
        return not _evaluate(f.part, env)
    raise TypeError(f)


class TestExistsElimination:
    @given(_qf)
    @settings(max_examples=80, deadline=None)
    def test_exists_q_eliminated_matches_ground_truth(self, body):
        prover = Prover()
        quantified = exists(["q"], body)
        eliminated = prover.eliminate_quantifiers(quantified)
        assert "q" not in eliminated.free_variables()
        # Spot-check on a grid of (x, y): the eliminated formula holds
        # iff some q in a wide window satisfies the body (window chosen
        # far larger than any coefficient/constant in play).
        for x, y in itertools.product(range(-4, 5), repeat=2):
            env = {"x": x, "y": y}
            got = _evaluate(eliminated, {**env, "q": 0})
            witness = any(_evaluate(body, {**env, "q": q})
                          for q in range(-60, 61))
            assert got == witness, (x, y)

    @given(_qf)
    @settings(max_examples=60, deadline=None)
    def test_forall_q_eliminated_matches_ground_truth(self, body):
        prover = Prover()
        quantified = forall(["q"], body)
        eliminated = prover.eliminate_quantifiers(quantified)
        assert "q" not in eliminated.free_variables()
        for x, y in itertools.product(range(-3, 4), repeat=2):
            env = {"x": x, "y": y}
            got = _evaluate(to_nnf(eliminated), {**env, "q": 0})
            truth = all(_evaluate(body, {**env, "q": q})
                        for q in range(-60, 61))
            # ∀ over the window is only an approximation of ∀ over ℤ in
            # the unsat→sat direction: if QE says valid, the window
            # must agree; if QE says not, a window counterexample may
            # lie outside.  Check the sound direction exactly:
            if got:
                assert truth, (x, y)


class TestEliminationIdempotent:
    @given(_qf)
    @settings(max_examples=60, deadline=None)
    def test_qf_input_unchanged_semantically(self, f):
        prover = Prover()
        eliminated = prover.eliminate_quantifiers(f)
        assert prover.equivalent(f, eliminated)
