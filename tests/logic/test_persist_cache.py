"""The persistent cross-run prover cache: storage, sharing, and —
critically — invalidation.  A stale or corrupt cache file must never
change verdicts; it may only cost a cold start.
"""

import sqlite3

import pytest

from repro.analysis.options import CheckerOptions
from repro.logic.formula import conj, ge
from repro.logic.persist import PersistentProverCache, SCHEMA_VERSION
from repro.logic.prover import Prover
from repro.logic.terms import Linear


def v(name):
    return Linear.var(name)


class TestRoundtrip:
    def test_get_put(self, tmp_path):
        cache = PersistentProverCache(str(tmp_path / "c.sqlite"))
        assert cache.get("d1") is None
        cache.put("d1", True)
        cache.put("d2", False)
        assert cache.get("d1") is True
        assert cache.get("d2") is False
        assert len(cache) == 2
        cache.close()

    def test_survives_reopen(self, tmp_path):
        path = str(tmp_path / "c.sqlite")
        first = PersistentProverCache(path)
        first.put("digest", True)
        first.close()
        second = PersistentProverCache(path)
        assert second.get("digest") is True
        assert second.hits == 1
        second.close()

    def test_two_handles_share_one_file(self, tmp_path):
        path = str(tmp_path / "c.sqlite")
        writer = PersistentProverCache(path)
        reader = PersistentProverCache(path)
        writer.put("shared", False)
        writer.flush()
        assert reader.get("shared") is False
        writer.close()
        reader.close()


class TestInvalidation:
    def test_corrupt_file_is_discarded(self, tmp_path):
        path = str(tmp_path / "c.sqlite")
        with open(path, "w") as handle:
            handle.write("this is not a sqlite database at all\n")
        cache = PersistentProverCache(path)
        assert cache.invalidations == 1
        assert cache.get("anything") is None
        cache.put("fresh", True)
        assert cache.get("fresh") is True
        cache.close()

    def test_version_bump_discards_results(self, tmp_path):
        path = str(tmp_path / "c.sqlite")
        old = PersistentProverCache(path, schema_version=SCHEMA_VERSION)
        old.put("stale", True)
        old.close()
        new = PersistentProverCache(path,
                                    schema_version=SCHEMA_VERSION + 1)
        assert new.invalidations == 1
        assert new.get("stale") is None  # result discarded
        new.close()
        # The file now carries the new version.
        conn = sqlite3.connect(path)
        row = conn.execute("SELECT value FROM meta WHERE "
                           "key='schema_version'").fetchone()
        conn.close()
        assert row[0] == str(SCHEMA_VERSION + 1)

    def test_unwritable_path_degrades_to_no_cache(self, tmp_path):
        target = tmp_path / "blocked"
        target.write_text("a file where the directory should be")
        cache = PersistentProverCache(str(target / "c.sqlite"))
        # Every operation is a total no-op, never an exception.
        assert cache.get("d") is None
        cache.put("d", True)
        cache.flush()
        assert len(cache) == 0
        cache.close()


class TestUnitTable:
    def payload(self, function="f", verdicts=((
            "ob1", True), ("ob2", False))):
        return {"schema": 1, "function": function,
                "obligations": [[d, ok] for d, ok in verdicts],
                "deps": {function: "digest"}}

    def test_put_get_roundtrip(self, tmp_path):
        cache = PersistentProverCache(str(tmp_path / "c.sqlite"))
        assert cache.get_unit("k1") == []
        cache.put_unit("k1", "deps-a", "f", self.payload())
        cache.flush()
        assert cache.get_unit("k1") == [self.payload()]
        assert cache.get_unit("other") == []
        cache.close()

    def test_one_key_many_dependency_contexts(self, tmp_path):
        """The same function body proved under different dependency
        contexts stores one row per context, and lookup returns every
        candidate."""
        cache = PersistentProverCache(str(tmp_path / "c.sqlite"))
        cache.put_unit("k", "deps-a", "f", self.payload("f"))
        cache.put_unit("k", "deps-b", "f",
                       {"schema": 1, "function": "f",
                        "obligations": [["ob1", True]],
                        "deps": {"f": "digest", "g": "other"}})
        cache.flush()
        assert len(cache.get_unit("k")) == 2
        # Same context again replaces, never duplicates.
        cache.put_unit("k", "deps-a", "f", self.payload("f"))
        cache.flush()
        assert len(cache.get_unit("k")) == 2
        cache.close()

    def test_survives_reopen(self, tmp_path):
        path = str(tmp_path / "c.sqlite")
        first = PersistentProverCache(path)
        first.put_unit("k", "deps", "f", self.payload())
        first.close()
        second = PersistentProverCache(path)
        assert second.get_unit("k") == [self.payload()]
        second.close()

    def test_version_bump_migrates_in_place(self, tmp_path):
        """A schema bump keeps the file but drops the rows of *both*
        tables — stale unit verdicts are as dangerous as stale formula
        results."""
        path = str(tmp_path / "c.sqlite")
        old = PersistentProverCache(path, schema_version=SCHEMA_VERSION)
        old.put("stale-result", True)
        old.put_unit("stale-unit", "deps", "f", self.payload())
        old.close()
        new = PersistentProverCache(path,
                                    schema_version=SCHEMA_VERSION + 1)
        assert new.invalidations == 1
        assert new.get("stale-result") is None
        assert new.get_unit("stale-unit") == []
        new.put_unit("fresh", "deps", "f", self.payload())
        new.flush()
        assert new.get_unit("fresh") == [self.payload()]
        new.close()
        conn = sqlite3.connect(path)
        row = conn.execute("SELECT value FROM meta WHERE "
                           "key='schema_version'").fetchone()
        conn.close()
        assert row[0] == str(SCHEMA_VERSION + 1)

    def test_wrong_column_layout_is_rebuilt(self, tmp_path):
        """A ``units`` table with an incompatible layout (e.g. written
        by a future version whose meta row was lost) is recreated, not
        queried."""
        path = str(tmp_path / "c.sqlite")
        seeded = PersistentProverCache(path)
        seeded.close()
        conn = sqlite3.connect(path)
        conn.execute("DROP TABLE units")
        conn.execute("CREATE TABLE units (unit_key TEXT, blob TEXT)")
        conn.execute("INSERT INTO units VALUES ('k', 'junk')")
        conn.commit()
        conn.close()
        cache = PersistentProverCache(path)
        assert cache.get_unit("k") == []
        cache.put_unit("k", "deps", "f", self.payload())
        cache.flush()
        assert cache.get_unit("k") == [self.payload()]
        cache.close()

    def test_corrupt_file_regression(self, tmp_path):
        """Corruption never raises out of the unit API — the file is
        discarded and the store behaves as empty (the formula-result
        regression, extended to the units table)."""
        path = str(tmp_path / "c.sqlite")
        with open(path, "w") as handle:
            handle.write("not a sqlite database\n")
        cache = PersistentProverCache(path)
        assert cache.invalidations == 1
        assert cache.get_unit("k") == []
        cache.put_unit("k", "deps", "f", self.payload())
        cache.flush()
        assert cache.get_unit("k") == [self.payload()]
        cache.close()

    def test_legacy_layout_is_migrated_in_place(self, tmp_path):
        """A ``units`` table from before the ``last_used`` column keeps
        its rows: the column is added in place, seeded from
        ``created``."""
        path = str(tmp_path / "c.sqlite")
        seeded = PersistentProverCache(path)
        seeded.put("result", True)
        seeded.close()
        conn = sqlite3.connect(path)
        conn.execute("DROP TABLE units")
        conn.execute("CREATE TABLE units ("
                     "unit_key TEXT NOT NULL, "
                     "deps_digest TEXT NOT NULL, "
                     "function TEXT NOT NULL, "
                     "payload TEXT NOT NULL, "
                     "created REAL NOT NULL, "
                     "PRIMARY KEY (unit_key, deps_digest))")
        import json as json_mod
        conn.execute("INSERT INTO units VALUES (?, ?, ?, ?, ?)",
                     ("k", "deps", "f",
                      json_mod.dumps(self.payload()), 123.0))
        conn.commit()
        conn.close()
        cache = PersistentProverCache(path)
        assert cache.migrations == 1
        assert cache.invalidations == 0
        assert cache.get_unit("k") == [self.payload()]  # row survived
        assert cache.get("result") is True
        cache.flush()
        conn = sqlite3.connect(path)
        columns = [row[1] for row in
                   conn.execute("PRAGMA table_info(units)")]
        conn.close()
        assert "last_used" in columns
        assert columns[-1] == "kind"
        cache.close()

    def test_lookup_bumps_last_used(self, tmp_path):
        path = str(tmp_path / "c.sqlite")
        cache = PersistentProverCache(path)
        cache.put_unit("k", "deps", "f", self.payload())
        cache.flush()
        before = cache._conn.execute(
            "SELECT last_used FROM units WHERE unit_key='k'"
        ).fetchone()[0]
        import time as time_mod
        time_mod.sleep(0.01)
        cache.get_unit("k")
        cache.flush()
        after = cache._conn.execute(
            "SELECT last_used FROM units WHERE unit_key='k'"
        ).fetchone()[0]
        assert after > before
        cache.close()

    def test_undecodable_payload_rows_are_skipped(self, tmp_path):
        path = str(tmp_path / "c.sqlite")
        cache = PersistentProverCache(path)
        cache.put_unit("k", "deps-a", "f", self.payload())
        cache.flush()
        cache._conn.execute(
            "INSERT INTO units VALUES ('k', 'deps-b', 'f', "
            "'{not json', 0, 0, 'unit')")
        cache._conn.commit()
        assert cache.get_unit("k") == [self.payload()]
        cache.close()


class TestMaintenance:
    def seeded(self, tmp_path):
        cache = PersistentProverCache(str(tmp_path / "c.sqlite"))
        for index in range(8):
            cache.put("digest-%d" % index, True)
            cache.put_unit("key-%d" % index, "deps", "f",
                           {"schema": 1, "function": "f",
                            "obligations": [["ob", True]],
                            "deps": {"f": "x" * 256}})
        cache.flush()
        return cache

    def test_stats_counts_both_tables(self, tmp_path):
        cache = self.seeded(tmp_path)
        stats = cache.stats()
        assert stats["exists"] is True
        assert stats["results"] == 8
        assert stats["units"] == 8
        assert stats["schema_version"] == SCHEMA_VERSION
        assert stats["size_bytes"] > 0
        cache.close()

    def test_clear_drops_rows_keeps_file(self, tmp_path):
        cache = self.seeded(tmp_path)
        cache.clear()
        stats = cache.stats()
        assert stats["exists"] is True
        assert stats["results"] == 0
        assert stats["units"] == 0
        cache.close()

    def test_gc_evicts_units_first(self, tmp_path):
        cache = self.seeded(tmp_path)
        report = cache.gc(max_mb=0.0)
        assert report["deleted_units"] == 8
        assert report["deleted_results"] == 8
        assert cache.stats()["units"] == 0
        cache.close()

    def test_gc_within_budget_deletes_nothing(self, tmp_path):
        cache = self.seeded(tmp_path)
        report = cache.gc(max_mb=64.0)
        assert report["deleted_units"] == 0
        assert report["deleted_results"] == 0
        assert cache.stats()["units"] == 8
        cache.close()

    def test_gc_evicts_lru_and_hot_units_survive(self, tmp_path):
        """gc evicts in ``last_used`` order: units kept hot by replay
        lookups outlive colder units that were *created* later."""
        cache = PersistentProverCache(str(tmp_path / "c.sqlite"))
        bulky = {"schema": 1, "function": "f",
                 "obligations": [["ob", True]],
                 "deps": {"f": "x" * 2048}}
        for index in range(256):
            cache.put_unit("key-%d" % index, "deps", "f", bulky)
        cache.flush()
        # Replay-touch the eight *oldest-created* units, making them
        # the hottest; with created-order eviction they would die
        # first, with LRU they must all survive.
        import time as time_mod
        time_mod.sleep(0.01)
        for index in range(8):
            assert cache.get_unit("key-%d" % index)
        cache.flush()
        page = cache.stats()["size_bytes"]
        report = cache.gc(max_mb=page / 2.0 / (1024 * 1024))
        assert report["deleted_units"] > 0
        survivors = {
            row[0] for row in cache._conn.execute(
                "SELECT unit_key FROM units").fetchall()}
        for index in range(8):
            assert "key-%d" % index in survivors
        cache.close()


class TestProverIntegration:
    def query(self):
        return conj(ge(v("x"), 0), ge(Linear({"x": -1}, 10), 0))

    def test_second_prover_hits_persistent_cache(self, tmp_path):
        path = str(tmp_path / "c.sqlite")
        first = Prover(persistent=PersistentProverCache(path))
        verdict = first.is_satisfiable(self.query())
        assert first.stats.persistent_cache_stores == 1
        first.persistent.close()
        second = Prover(persistent=PersistentProverCache(path))
        assert second.is_satisfiable(self.query()) == verdict
        assert second.stats.persistent_cache_hits == 1
        second.persistent.close()

    def test_verdicts_identical_with_corrupted_cache(self, tmp_path):
        """Corruption mid-lifecycle: verdicts match a cold run."""
        path = str(tmp_path / "c.sqlite")
        plain = Prover().is_satisfiable(self.query())
        with open(path, "w") as handle:
            handle.write("garbage")
        prover = Prover(persistent=PersistentProverCache(path))
        assert prover.is_satisfiable(self.query()) == plain
        prover.persistent.close()


class TestCheckerIntegration:
    def checked(self, tmp_path, name="sum"):
        from repro.programs import all_programs
        program = next(p for p in all_programs() if p.name == name)
        path = str(tmp_path / "prover.sqlite")
        options = CheckerOptions(cache_path=path)
        return program, options

    @staticmethod
    def verdicts(result):
        return (result.safe,
                [(p.uid, p.index, p.proved) for p in result.proofs],
                [(w.index, w.category, w.description, w.phase)
                 for w in result.violations])

    def test_warm_run_identical_to_cold(self, tmp_path):
        program, options = self.checked(tmp_path)
        baseline = program.check()  # no persistent cache at all
        cold = program.check(options=options)
        warm = program.check(options=options)
        assert self.verdicts(cold) == self.verdicts(baseline)
        assert self.verdicts(warm) == self.verdicts(baseline)
        assert cold.prover_stats["persistent_cache_stores"] > 0
        # Warm, the function-unit layer replays the verdicts before
        # the formula-level cache is ever consulted.
        assert warm.prover_stats["unit_hits"] > 0

    def test_formula_level_cache_still_warms(self, tmp_path):
        """With unit replay disabled the formula-level persistent
        cache carries the warm run, exactly as before the unit layer
        existed."""
        program, options = self.checked(tmp_path)
        options.enable_unit_cache = False
        baseline = program.check()
        cold = program.check(options=options)
        warm = program.check(options=options)
        assert self.verdicts(cold) == self.verdicts(baseline)
        assert self.verdicts(warm) == self.verdicts(baseline)
        assert cold.prover_stats["persistent_cache_stores"] > 0
        assert warm.prover_stats["persistent_cache_hits"] > 0
        assert warm.prover_stats["persistent_cache_stores"] == 0

    def test_version_bumped_cache_matches_cold_verdicts(self, tmp_path,
                                                        monkeypatch):
        program, options = self.checked(tmp_path)
        cold = program.check(options=options)
        # Simulate a digest-definition change: bump the schema.
        import repro.logic.persist as persist
        monkeypatch.setattr(persist, "SCHEMA_VERSION",
                            persist.SCHEMA_VERSION + 1)
        bumped = program.check(options=options)
        assert self.verdicts(bumped) == self.verdicts(cold)
        # The stale results were dropped: everything re-proved.
        assert bumped.prover_stats["persistent_cache_hits"] == 0
        assert bumped.prover_stats["persistent_cache_stores"] > 0


class TestSchemaV2Migration:
    """v2 files (pre-``kind`` column) carry rows whose digest recipes
    are unchanged in v3: opening one must keep every row, tag the
    table with the ``kind`` column, and count a migration — not an
    invalidation."""

    def seeded_v2(self, tmp_path):
        path = str(tmp_path / "c.sqlite")
        conn = sqlite3.connect(path)
        conn.execute("CREATE TABLE meta (key TEXT PRIMARY KEY, "
                     "value TEXT NOT NULL)")
        conn.execute("INSERT INTO meta VALUES ('schema_version', '2')")
        conn.execute("CREATE TABLE results (digest TEXT PRIMARY KEY, "
                     "satisfiable INTEGER NOT NULL)")
        conn.execute("INSERT INTO results VALUES ('d', 1)")
        conn.execute("CREATE TABLE units ("
                     "unit_key TEXT NOT NULL, "
                     "deps_digest TEXT NOT NULL, "
                     "function TEXT NOT NULL, "
                     "payload TEXT NOT NULL, "
                     "created REAL NOT NULL, "
                     "last_used REAL NOT NULL, "
                     "PRIMARY KEY (unit_key, deps_digest))")
        import json as json_mod
        conn.execute("INSERT INTO units VALUES (?, ?, ?, ?, ?, ?)",
                     ("k", "deps", "f",
                      json_mod.dumps({"schema": 1}), 1.0, 2.0))
        conn.commit()
        conn.close()
        return path

    def test_v2_rows_survive_the_v3_migration(self, tmp_path):
        path = self.seeded_v2(tmp_path)
        cache = PersistentProverCache(path)
        assert cache.migrations == 1
        assert cache.invalidations == 0
        assert cache.get("d") is True
        assert cache.get_unit("k") == [{"schema": 1}]
        cache.close()
        conn = sqlite3.connect(path)
        assert conn.execute("SELECT value FROM meta WHERE "
                            "key='schema_version'").fetchone()[0] \
            == str(SCHEMA_VERSION)
        columns = [row[1] for row in
                   conn.execute("PRAGMA table_info(units)")]
        assert columns[-1] == "kind"
        # Pre-existing rows default to the phase-5 verdict kind.
        assert conn.execute("SELECT kind FROM units").fetchone()[0] \
            == "unit"
        conn.close()

    def test_migrated_file_counts_kinds(self, tmp_path):
        path = self.seeded_v2(tmp_path)
        cache = PersistentProverCache(path)
        cache.put_unit("p", "deps", "f", {"schema": 1},
                       kind="pipeline")
        cache.flush()
        stats = cache.stats()
        assert stats["units_by_kind"] == {"pipeline": 1, "unit": 1}
        cache.close()

    def test_future_version_still_invalidates(self, tmp_path):
        path = self.seeded_v2(tmp_path)
        conn = sqlite3.connect(path)
        conn.execute("UPDATE meta SET value='99' "
                     "WHERE key='schema_version'")
        conn.commit()
        conn.close()
        cache = PersistentProverCache(path)
        assert cache.invalidations == 1
        assert cache.get("d") is None
        assert cache.get_unit("k") == []
        cache.close()


class TestWriteBehindFlush:
    """``last_used`` bumps ride a write-behind batch; every graceful
    exit path (checker close, worker drain) must flush it so LRU gc
    never evicts a unit the previous run just replayed."""

    def test_bumps_are_batched_until_flush(self, tmp_path):
        cache = PersistentProverCache(str(tmp_path / "c.sqlite"))
        cache.put_unit("k", "deps", "f", {"schema": 1})
        cache.flush()
        before = cache._conn.execute(
            "SELECT last_used FROM units").fetchone()[0]
        import time as time_mod
        time_mod.sleep(0.01)
        cache.get_unit("k")
        # Not flushed yet: the row is untouched on disk.
        assert cache._conn.execute(
            "SELECT last_used FROM units").fetchone()[0] == before
        cache.flush()
        assert cache._conn.execute(
            "SELECT last_used FROM units").fetchone()[0] > before

    def test_close_flushes_the_batch(self, tmp_path):
        path = str(tmp_path / "c.sqlite")
        cache = PersistentProverCache(path)
        cache.put_unit("k", "deps", "f", {"schema": 1})
        cache.flush()
        before = cache._conn.execute(
            "SELECT last_used FROM units").fetchone()[0]
        import time as time_mod
        time_mod.sleep(0.01)
        cache.get_unit("k")
        cache.close()
        conn = sqlite3.connect(path)
        after = conn.execute(
            "SELECT last_used FROM units").fetchone()[0]
        conn.close()
        assert after > before

    def test_verify_drain_gc_keeps_the_unit(self, tmp_path):
        """End to end through the service: verify a program through a
        worker, drain the pool (the graceful shutdown path), then gc
        hard enough to evict cold ballast — the replayed units'
        flushed recency must keep them alive, and a warm re-check must
        still hit."""
        from repro.analysis.options import CheckerOptions
        from repro.bench import INCREMENTAL_SOURCE, INCREMENTAL_SPEC
        from repro.service.scheduler import CheckRequest, Scheduler
        from repro.service.worker import WorkerPool

        path = str(tmp_path / "c.sqlite")
        # Cold ballast: old units a recency-blind gc would keep and an
        # LRU gc must evict first.
        ballast = PersistentProverCache(path)
        bulky = {"schema": 1, "function": "f", "pad": "x" * 4096}
        for index in range(64):
            ballast.put_unit("ballast-%d" % index, "deps", "f", bulky)
        ballast.flush()
        ballast._conn.execute("UPDATE units SET last_used=1.0")
        ballast._conn.commit()
        ballast.close()

        def run_job():
            scheduler = Scheduler()
            pool = WorkerPool(scheduler, workers=1, cache_path=path)
            pool.start()
            job = scheduler.submit(CheckRequest.build(
                INCREMENTAL_SOURCE, INCREMENTAL_SPEC,
                name="incremental"))
            scheduler.drain()
            assert pool.join(timeout_s=60.0)
            assert job.state == "completed"
            return job

        run_job()  # populate
        import time as time_mod
        time_mod.sleep(0.01)
        run_job()  # replay: bumps last_used through the drain path

        survivor = PersistentProverCache(path)
        # Budget sized between the program's own rows (~70 KiB,
        # pipeline blobs included) and ballast+program, so the LRU
        # sweep must stop right after the ballast.
        report = survivor.gc(max_mb=0.2)
        assert report["deleted_units"] > 0
        fresh = {row[0] for row in survivor._conn.execute(
            "SELECT unit_key FROM units WHERE "
            "unit_key NOT LIKE 'ballast-%'")}
        survivor.close()
        assert fresh  # the verified program's units outlived the gc

        from repro.analysis.checker import check_assembly
        warm = check_assembly(
            INCREMENTAL_SOURCE, INCREMENTAL_SPEC, name="incremental",
            options=CheckerOptions(jobs=1, cache_path=path))
        assert warm.prover_stats["unit_pipeline_hits"] == 1
        assert warm.prover_stats["unit_hits"] > 0
