"""Formula construction, NNF/DNF, and simplifier tests."""

from hypothesis import given, settings, strategies as st

from repro.logic import Prover
from repro.logic.formula import (
    And, Cong, Eq, Exists, FALSE, Forall, Geq, Not, Or, TRUE,
    conj, congruent, disj, eq, exists, forall, ge, gt, implies, le, lt,
    ne, neg,
)
from repro.logic.normalize import to_dnf, to_nnf
from repro.logic.simplify import simplify
from repro.logic.terms import Linear


def v(name):
    return Linear.var(name)


class TestSmartConstructors:
    def test_conj_flattens_and_dedupes(self):
        a, b = ge(v("x"), 0), ge(v("y"), 0)
        f = conj(a, conj(b, a))
        assert isinstance(f, And) and len(f.parts) == 2

    def test_conj_absorbs_constants(self):
        a = ge(v("x"), 0)
        assert conj(a, TRUE) == a
        assert conj(a, FALSE) == FALSE
        assert conj() == TRUE

    def test_disj_absorbs_constants(self):
        a = ge(v("x"), 0)
        assert disj(a, FALSE) == a
        assert disj(a, TRUE) == TRUE
        assert disj() == FALSE

    def test_double_negation(self):
        a = ge(v("x"), 0)
        assert neg(neg(a)) == a

    def test_ground_atoms_fold(self):
        assert ge(3, 1) == TRUE
        assert ge(1, 3) == FALSE
        assert eq(2, 2) == TRUE
        assert congruent(Linear.const(8), 4) == TRUE
        assert congruent(Linear.const(7), 4) == FALSE

    def test_strict_comparisons_use_integer_slack(self):
        f = lt(v("x"), v("y"))
        assert isinstance(f, Geq)
        assert f.term == v("y") - v("x") - 1

    def test_exists_drops_unused_binders(self):
        body = ge(v("x"), 0)
        assert exists(["z"], body) == body
        assert isinstance(exists(["x"], body), Exists)

    def test_quantifier_collapse(self):
        inner = exists(["y"], ge(v("x") + v("y"), 0))
        outer = exists(["x"], inner)
        assert isinstance(outer, Exists)
        assert set(outer.variables) == {"x", "y"}


class TestCaptureAvoidance:
    def test_substitution_into_quantifier_renames(self):
        # (exists y. x <= y)[x := y] must not capture y.
        f = exists(["y"], le(v("x"), v("y")))
        out = f.substitute("x", v("y"))
        prover = Prover()
        # The result says: exists y'. y <= y' — valid for every y.
        assert prover.is_valid(out)

    def test_substitution_under_forall(self):
        f = forall(["y"], implies(ge(v("y"), v("x")), ge(v("y"), v("x"))))
        assert Prover().is_valid(f.substitute("x", v("y")))


class TestNNF:
    def test_negated_geq(self):
        f = to_nnf(neg(ge(v("x"), 0)))
        assert f == Geq(v("x").scale(-1) - 1)

    def test_negated_eq_becomes_disjunction(self):
        f = to_nnf(neg(eq(v("x"), 0)))
        assert isinstance(f, Or) and len(f.parts) == 2

    def test_negated_congruence_enumerates_residues(self):
        f = to_nnf(neg(congruent(v("x"), 4)))
        assert isinstance(f, Or) and len(f.parts) == 3
        assert all(isinstance(p, Cong) for p in f.parts)

    def test_no_not_nodes_remain(self):
        f = neg(conj(ge(v("x"), 0), neg(disj(eq(v("y"), 1),
                                             congruent(v("z"), 2)))))
        def scan(g):
            assert not isinstance(g, Not)
            for child in getattr(g, "parts", ()):
                scan(child)
        scan(to_nnf(f))

    def test_quantifiers_flip(self):
        f = to_nnf(neg(forall(["x"], ge(v("x"), 0))))
        assert isinstance(f, Exists)


class TestDNF:
    def test_distribution(self):
        a, b, c = ge(v("x"), 0), ge(v("y"), 0), ge(v("z"), 0)
        dnf = to_dnf(conj(disj(a, b), c))
        assert len(dnf) == 2
        assert all(len(conjunct) == 2 for conjunct in dnf)

    def test_true_and_false(self):
        assert to_dnf(TRUE) == [()]
        assert to_dnf(FALSE) == []


class TestSimplify:
    def test_strongest_inequality_kept_in_conjunction(self):
        x = v("x")
        f = simplify(conj(ge(x, 1), ge(x, 5)))
        assert f == ge(x, 5)

    def test_weakest_inequality_kept_in_disjunction(self):
        x = v("x")
        f = simplify(disj(ge(x, 1), ge(x, 5)))
        assert f == ge(x, 1)

    def test_direct_contradiction_detected(self):
        x = v("x")
        assert simplify(conj(ge(x, 3), le(x, 1))) == FALSE

    def test_integer_covering_disjunction_is_true(self):
        x = v("x")
        assert simplify(disj(ge(x, 2), le(x, 1))) == TRUE

    def test_complementary_guard_merge(self):
        # (c -> X) and (not c -> X)  simplifies to X.
        c = ge(v("i"), 0)
        x = ge(v("n"), 1)
        f = simplify(conj(implies(c, x), implies(neg(c), x)))
        assert f == x

    def test_gcd_normalization_of_atoms(self):
        f = simplify(Geq(Linear({"x": 2}, 4)))
        assert f == Geq(Linear({"x": 1}, 2))


_formulas = st.recursive(
    st.builds(
        lambda coeffs, const, rel: rel(Linear(coeffs, const), 0),
        st.dictionaries(st.sampled_from(["p", "q"]),
                        st.integers(-4, 4), min_size=1, max_size=2),
        st.integers(-9, 9),
        st.sampled_from([ge, le, eq, ne])),
    lambda children: st.one_of(
        st.builds(lambda a, b: conj(a, b), children, children),
        st.builds(lambda a, b: disj(a, b), children, children),
        st.builds(neg, children)),
    max_leaves=5)


class TestSimplifyProperties:
    @given(_formulas)
    @settings(max_examples=80, deadline=None)
    def test_simplify_preserves_equivalence(self, f):
        prover = Prover()
        assert prover.equivalent(f, simplify(f))

    @given(_formulas)
    @settings(max_examples=80, deadline=None)
    def test_nnf_preserves_equivalence(self, f):
        prover = Prover()
        assert prover.equivalent(f, to_nnf(f))
