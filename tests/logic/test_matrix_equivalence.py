"""Randomized equivalence of the matrix-backed Omega kernel against
the dict-based reference implementation.

The matrix backend (:mod:`repro.logic.matrix`) is a pure representation
change: it mirrors the reference kernel's pivot choices, list orders,
and resource limits exactly, so on the same input both backends must
produce **structurally identical** outputs — not merely equivalent
ones.  That strong contract is what makes verdict parity across the
``--no-matrix`` ablation hold by construction; these tests enforce it
on 500+ randomized constraint systems.

Both backends consume fresh ``$q`` variables from the shared global
counter when lowering congruences, so each comparison pins the counter
to the same value before each run — production never leaks fresh names
into outputs, but structural equality of intermediate systems needs
identical names.
"""

import itertools
import random

import pytest

from repro.errors import ProverError
from repro.logic import formula as F
from repro.logic import matrix
from repro.logic.omega import (
    Constraints, _satisfiable_dict, eliminate_equalities, normalize,
    project, project_real,
)
from repro.logic.terms import Linear

#: Enough cases to exercise every kernel path (equality gcd rule, unit
#: substitution, scale-out, congruence lowering, dark shadow and
#: splinters, real-shadow FM) while staying inside tier-1 budget.
CASES = 500


def _linear(rng, variables, coeff_range=6, const_range=40):
    coefficients = {}
    for v in variables:
        if rng.random() < 0.5:
            k = rng.randint(-coeff_range, coeff_range)
            if k:
                coefficients[v] = k
    return Linear(coefficients, rng.randint(-const_range, const_range))


def _system(rng, seed):
    variables = ["a", "b", "c", "d", "e", "f", "g", "h"][
        : rng.randint(1, 8)]
    geqs = [_linear(rng, variables)
            for _ in range(rng.randint(0, 6))]
    eqs = [_linear(rng, variables)
           for _ in range(rng.randint(0, 3))]
    congs = [(_linear(rng, variables), rng.choice([2, 3, 4, 8]))
             for _ in range(rng.randint(0, 2))]
    return Constraints(geqs=geqs, eqs=eqs, congs=congs), variables


def _pinned(fn, *args):
    """Run *fn* with the fresh-variable counter pinned, capturing both
    the value and any ProverError (resource limits must agree too)."""
    F._fresh_counter = itertools.count(10 ** 6)
    try:
        return ("ok", fn(*args))
    except ProverError as error:
        return ("error", str(error))


def _key(c):
    """Structural identity of a Constraints value."""
    if c is None:
        return None
    return (tuple(str(g) for g in c.geqs),
            tuple(str(e) for e in c.eqs),
            tuple((str(t), m) for t, m in c.congs))


@pytest.mark.parametrize("seed", range(CASES))
def test_backends_agree_structurally(seed):
    rng = random.Random(987_000 + seed)
    c, variables = _system(rng, seed)
    eliminate = [v for v in variables if rng.random() < 0.5]

    def norm_matrix():
        result = matrix.normalize_system(matrix.from_constraints(c))
        return None if result is None \
            else _key(matrix.to_constraints(result))

    def norm_dict():
        result = normalize(c)
        return None if result is None else _key(result)

    assert _pinned(norm_matrix) == _pinned(norm_dict)

    tag, got = _pinned(matrix.satisfiable_system, c)
    ref_tag, ref = _pinned(_satisfiable_dict, c)
    assert (tag, got) == (ref_tag, ref)

    def proj_matrix():
        return [_key(s) for s in matrix.project_system(c, eliminate)]

    def proj_dict():
        return [_key(s) for s in project(c, eliminate,
                                         use_matrix=False)]

    assert _pinned(proj_matrix) == _pinned(proj_dict)

    tag, got = _pinned(matrix.project_real_system, c, eliminate)
    ref_tag, ref = _pinned(project_real, c, eliminate, False)
    assert (tag, _key(got) if tag == "ok" else got) \
        == (ref_tag, _key(ref) if ref_tag == "ok" else ref)


@pytest.mark.parametrize("seed", range(0, CASES, 10))
def test_equality_elimination_agrees(seed):
    rng = random.Random(550_000 + seed)
    c, variables = _system(rng, seed)
    eliminable = {v for v in variables if rng.random() < 0.6}

    def elim_matrix():
        result = matrix.eliminate_equalities_system(
            matrix.from_constraints(c), eliminable)
        return None if result is None \
            else _key(matrix.to_constraints(result))

    def elim_dict():
        result = eliminate_equalities(c, eliminable)
        return None if result is None else _key(result)

    assert _pinned(elim_matrix) == _pinned(elim_dict)


def test_roundtrip_preserves_structure():
    rng = random.Random(7)
    for seed in range(200):
        c, _ = _system(rng, seed)
        assert _key(matrix.to_constraints(matrix.from_constraints(c))) \
            == _key(c)
