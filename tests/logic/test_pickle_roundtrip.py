"""Pickling of hash-consed terms and formulas.

The parallel proof engine ships formulas to pool workers by pickle;
unpickling must route through the interning constructors so the nodes
land in the *receiving* process's intern tables with their structural
metadata (size, quantifier flag) intact, and the canonical digest used
by the persistent prover cache must be stable across processes with
different hash seeds.
"""

import os
import pickle
import subprocess
import sys

from repro.logic.formula import (
    And, Cong, Eq, Exists, FALSE, Forall, Geq, Not, Or, TRUE,
    conj, disj, eq, ge, formula_size, has_quantifier,
)
from repro.logic.serialize import formula_digest, formula_text
from repro.logic.terms import Linear


def v(name):
    return Linear.var(name)


def roundtrip(f):
    return pickle.loads(pickle.dumps(f))


class TestLinearPickle:
    def test_roundtrip_is_interned_identity(self):
        term = Linear({"x": 2, "y": -3}, 7)
        assert roundtrip(term) is term

    def test_constant_roundtrip(self):
        assert roundtrip(Linear({}, 42)) is Linear({}, 42)


class TestFormulaPickleEveryNodeKind:
    """One case per Formula node class: the loaded object must be the
    *identical* interned node, with size and quantifier flag intact."""

    def cases(self):
        x, y = v("x"), v("y")
        return [
            TRUE,                                   # TrueFormula
            FALSE,                                  # FalseFormula
            Geq(x),                                 # Geq
            Eq(y),                                  # Eq
            Cong(x, 4),                             # Cong
            And((Geq(x), Geq(y))),                  # And
            Or((Eq(x), Cong(y, 8))),                # Or
            Not(Geq(x)),                            # Not
            Exists(("x",), ge(v("x"), 0)),          # Exists
            Forall(("y",), eq(v("y"), v("x"))),     # Forall
        ]

    def test_roundtrip_every_kind(self):
        for f in self.cases():
            loaded = roundtrip(f)
            assert loaded is f, type(f).__name__
            assert formula_size(loaded) == formula_size(f)
            assert has_quantifier(loaded) == has_quantifier(f)

    def test_nested_formula_roundtrip(self):
        f = Exists(("k",),
                   conj(ge(v("k"), 0),
                        disj(eq(v("x"), v("k")),
                             Not(Cong(v("x"), 2)))))
        loaded = roundtrip(f)
        assert loaded is f
        assert formula_text(loaded) == formula_text(f)
        assert formula_digest(loaded) == formula_digest(f)

    def test_subformulas_reintern_too(self):
        inner = ge(v("q"), 5)
        outer = conj(inner, eq(v("r"), v("q")))
        loaded = roundtrip(outer)
        assert loaded.parts[0] is inner


_DIGEST_SNIPPET = """
import sys
sys.path.insert(0, %r)
from repro.logic.formula import conj, disj, eq, ge, exists, neg
from repro.logic.serialize import formula_digest
from repro.logic.terms import Linear
x, y, z = (Linear.var(n) for n in "xyz")
f = exists(["k"], conj(ge(Linear.var("k"), 0),
                       disj(eq(x, y), ge(z, 3), neg(ge(y, 7)))))
print(formula_digest(f))
"""


class TestDigestProcessStability:
    def test_digest_identical_across_hash_seeds(self):
        """The persistent-cache key must not depend on Python's
        per-process hash randomization (canonicalize orders junction
        children by hash; the digest re-sorts by rendered text)."""
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))), "src")
        digests = []
        for seed in ("1", "7"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            out = subprocess.run(
                [sys.executable, "-c", _DIGEST_SNIPPET % src],
                capture_output=True, text=True, env=env, check=True)
            digests.append(out.stdout.strip())
        assert digests[0] == digests[1]
        assert len(digests[0]) == 64

    def test_digest_invariant_under_commutative_reordering(self):
        a = conj(ge(v("x"), 0), eq(v("y"), v("x")), Cong(v("z"), 4))
        b = conj(Cong(v("z"), 4), eq(v("y"), v("x")), ge(v("x"), 0))
        assert formula_digest(a) == formula_digest(b)

    def test_digest_distinguishes_formulas(self):
        assert formula_digest(ge(v("x"), 0)) \
            != formula_digest(ge(v("x"), 1))
