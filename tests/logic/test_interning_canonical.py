"""Tests of the performance layer: hash-consing of terms and formulas,
the bounded memo caches, the canonical form used for prover caching,
and the prover's cache/fallback bookkeeping."""

import pytest

from repro.errors import ProverError
from repro.logic.canonical import canonical_conjunct, canonicalize
from repro.logic.formula import (
    And, Cong, Eq, Exists, FALSE, Forall, Geq, Not, Or, TRUE,
    conj, disj, eq, exists, forall, formula_interning_enabled,
    formula_size, ge, has_quantifier, neg, set_formula_interning,
)
from repro.logic.memo import (
    BoundedCache, clear_all_caches, memoization_enabled, set_memoization,
)
from repro.logic.prover import Prover
from repro.logic.terms import (
    Linear, linear, set_term_interning, term_interning_enabled,
)


def v(name):
    return linear(name)


# ---------------------------------------------------------------------------
# Hash-consing
# ---------------------------------------------------------------------------


class TestInterning:
    def test_equal_terms_are_identical(self):
        a = Linear({"x": 2, "y": -3}, 7)
        b = Linear({"y": -3, "x": 2}, 7)
        assert a is b

    def test_zero_coefficients_are_dropped_before_interning(self):
        assert Linear({"x": 1, "y": 0}, 0) is Linear({"x": 1}, 0)

    def test_equal_formulas_are_identical(self):
        a = conj(ge(v("x"), 0), ge(v("y"), 1))
        b = conj(ge(v("x"), 0), ge(v("y"), 1))
        assert a is b

    def test_distinct_formulas_are_distinct(self):
        assert ge(v("x"), 0) is not ge(v("x"), 1)
        assert Geq(Linear({"x": 1}, 0)) is not Eq(Linear({"x": 1}, 0))

    def test_quantifiers_intern(self):
        a = Exists(("x",), ge(v("x"), 0))
        b = Exists(("x",), ge(v("x"), 0))
        assert a is b
        assert a is not Forall(("x",), ge(v("x"), 0))

    def test_structural_equality_survives_interning_off(self):
        set_term_interning(False)
        set_formula_interning(False)
        try:
            a = conj(ge(v("x"), 0), eq(v("y"), v("x")))
            b = conj(ge(v("x"), 0), eq(v("y"), v("x")))
            assert a is not b
            assert a == b
            assert hash(a) == hash(b)
        finally:
            set_term_interning(True)
            set_formula_interning(True)
        assert term_interning_enabled()
        assert formula_interning_enabled()

    def test_interned_and_uninterned_nodes_compare_equal(self):
        interned = ge(v("x"), 5)
        set_formula_interning(False)
        set_term_interning(False)
        try:
            plain = ge(v("x"), 5)
        finally:
            set_term_interning(True)
            set_formula_interning(True)
        assert interned == plain and hash(interned) == hash(plain)

    def test_cong_still_validates_modulus(self):
        with pytest.raises(ValueError):
            Cong(Linear({"x": 1}, 0), 1)


# ---------------------------------------------------------------------------
# Eager structure metadata
# ---------------------------------------------------------------------------


class TestStructureMetadata:
    def test_formula_size_counts_atoms(self):
        f = conj(ge(v("a"), 0), disj(ge(v("b"), 0), ge(v("c"), 0)),
                 Not(eq(v("d"), v("e"))))
        assert formula_size(f) == 4
        assert formula_size(TRUE) == 1

    def test_has_quantifier(self):
        plain = conj(ge(v("a"), 0), ge(v("b"), 0))
        assert not has_quantifier(plain)
        assert has_quantifier(exists(("a",), plain))
        assert has_quantifier(conj(ge(v("c"), 0),
                                   forall(("a",), plain)))
        assert has_quantifier(Not(exists(("a",), plain)))


# ---------------------------------------------------------------------------
# Bounded caches
# ---------------------------------------------------------------------------


class TestBoundedCache:
    def test_eviction_keeps_newest_half(self):
        cache = BoundedCache(limit=8, gated=False, registered=False)
        for i in range(8):
            cache.put(i, i)
        cache.put(8, 8)  # triggers eviction of 0..3
        assert len(cache) == 5
        assert cache.get(0) is None
        assert cache.get(7) == 7
        assert cache.get(8) == 8

    def test_global_switch_gates_and_clears(self):
        cache = BoundedCache(limit=8, registered=False)
        cache.put("k", "v")
        assert cache.get("k") == "v"
        set_memoization(False)
        try:
            assert not memoization_enabled()
            assert cache.get("k") is None
            cache.put("k2", "v2")
            assert len(cache) == 1  # put ignored while disabled
        finally:
            set_memoization(True)
        # Registered caches were cleared on disable; this private one
        # was not, so its old entry is visible again.
        assert cache.get("k") == "v"

    def test_clear_all_caches_runs(self):
        clear_all_caches()  # must not raise


# ---------------------------------------------------------------------------
# Canonicalization
# ---------------------------------------------------------------------------


class TestCanonicalize:
    def test_commutative_reordering_coincides(self):
        a = conj(ge(v("x"), 0), ge(v("y"), 1))
        b = conj(ge(v("y"), 1), ge(v("x"), 0))
        assert canonicalize(a) is canonicalize(b)

    def test_gcd_variants_coincide(self):
        a = Geq(Linear({"x": 2}, 4))
        b = Geq(Linear({"x": 3}, 6))
        assert canonicalize(a) is canonicalize(b)

    def test_alpha_variants_coincide(self):
        a = exists(("t",), conj(ge(v("t"), 0), eq(v("t"), v("n"))))
        b = exists(("u",), conj(ge(v("u"), 0), eq(v("u"), v("n"))))
        assert canonicalize(a) is canonicalize(b)

    def test_free_variables_are_not_renamed(self):
        a = exists(("t",), eq(v("t"), v("n")))
        b = exists(("t",), eq(v("t"), v("m")))
        assert canonicalize(a) is not canonicalize(b)

    def test_nested_quantifiers_distinguished_by_depth(self):
        inner = lambda x, y: conj(ge(v(x), 0), ge(v(y), 0))
        a = exists(("x",), exists(("y",), inner("x", "y")))
        b = exists(("y",), exists(("x",), inner("y", "x")))
        assert canonicalize(a) is canonicalize(b)

    def test_canonicalize_preserves_verdict(self):
        prover = Prover()
        f = exists(("t",), conj(ge(v("t"), 3),
                                ge(Linear({"t": -1}, 10), 0)))
        assert prover.is_satisfiable(f) \
            == prover.is_satisfiable(canonicalize(f))


class TestCanonicalConjunct:
    def test_order_and_scale_independent(self):
        a = (Geq(Linear({"x": 2}, 4)), Geq(Linear({"y": 1}, 0)))
        b = (Geq(Linear({"y": 3}, 0)), Geq(Linear({"x": 1}, 2)))
        assert canonical_conjunct(a) == canonical_conjunct(b)

    def test_ground_false_atom_returns_none(self):
        atoms = (Geq(Linear({}, -1)), Geq(Linear({"x": 1}, 0)))
        assert canonical_conjunct(atoms) is None

    def test_all_true_atoms_give_empty_key(self):
        assert canonical_conjunct((Geq(Linear({}, 5)),)) == frozenset()


# ---------------------------------------------------------------------------
# Prover caching and bookkeeping
# ---------------------------------------------------------------------------


class TestProverCaches:
    def test_raw_cache_hit_on_repeat(self):
        prover = Prover()
        f = conj(ge(v("x"), 0), ge(Linear({"x": -1}, 5), 0))
        assert prover.is_satisfiable(f)
        assert prover.is_satisfiable(f)
        assert prover.stats.cache_hits == 1

    def test_canonical_cache_hit_on_variant(self):
        prover = Prover(enable_cache=False)
        a = conj(ge(v("x"), 0), ge(v("y"), 1))
        b = conj(ge(v("y"), 1), ge(v("x"), 0))
        assert prover.is_satisfiable(a) == prover.is_satisfiable(b)
        assert prover.stats.canonical_cache_hits == 1

    def test_verdicts_identical_with_and_without_caches(self):
        queries = [
            conj(ge(v("x"), 0), ge(Linear({"x": -1}, 5), 0)),
            conj(ge(v("x"), 1), ge(Linear({"x": -1}, -2), 0)),  # unsat
            exists(("t",), conj(ge(v("t"), 0), eq(v("t"), v("n")))),
            conj(eq(v("a"), v("b")), ge(Linear({"a": 1, "b": -1}, -1), 0)),
        ]
        cached = Prover()
        plain = Prover(enable_cache=False, enable_canonical_cache=False)
        for f in queries + queries:  # second pass exercises the caches
            assert cached.is_satisfiable(f) == plain.is_satisfiable(f)

    def test_reset_clears_stats_and_caches(self):
        prover = Prover()
        f = ge(v("x"), 0)
        prover.is_satisfiable(f)
        prover.is_satisfiable(f)
        assert prover.stats.cache_hits == 1
        prover.reset()
        assert prover.stats.satisfiability_queries == 0
        assert prover.stats.cache_hits == 0
        prover.is_satisfiable(f)
        assert prover.stats.cache_hits == 0  # cache really was emptied

    def test_resource_fallback_is_counted_not_silent(self):
        prover = Prover()
        # A conjunction of many disjunctions blows past the DNF limit.
        big = conj(*(disj(ge(v("x%d" % i), 0), ge(v("y%d" % i), 0))
                     for i in range(20)))
        import repro.logic.normalize as normalize
        old = normalize.MAX_DNF_CONJUNCTS
        normalize.MAX_DNF_CONJUNCTS = 16
        try:
            assert prover.is_satisfiable(big) is True
        finally:
            normalize.MAX_DNF_CONJUNCTS = old
        assert prover.stats.resource_fallbacks == 1

    def test_stats_as_dict_has_rates(self):
        prover = Prover()
        prover.is_satisfiable(ge(v("x"), 0))
        d = prover.stats.as_dict()
        assert "cache_hit_rate" in d and "conjunct_hit_rate" in d
        assert d["satisfiability_queries"] == 1
