"""Omega-test core: satisfiability, projection, and exactness against
brute force (hypothesis)."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.logic.formula import Cong, Eq, Geq
from repro.logic.omega import (
    Constraints, normalize, project, project_real, satisfiable,
)
from repro.logic.terms import Linear


def sat(*atoms):
    return satisfiable(Constraints.from_atoms(atoms))


def x(coeff=1):
    return Linear.var("x", coeff)


def y(coeff=1):
    return Linear.var("y", coeff)


class TestSatisfiability:
    def test_trivial_true(self):
        assert sat()

    def test_ground_contradiction(self):
        assert not sat(Geq(Linear.const(-1)))

    def test_simple_interval(self):
        assert sat(Geq(x() - 2), Geq(2 - x()))          # x == 2
        assert not sat(Geq(x() - 3), Geq(2 - x()))      # 3 <= x <= 2

    def test_integrality_of_equalities(self):
        assert not sat(Eq(x(2) - 1))                    # 2x = 1
        assert sat(Eq(x(2) - 4))                        # 2x = 4

    def test_linear_diophantine(self):
        assert sat(Eq(x(3) + y(5) - 1))                 # 3x + 5y = 1
        assert not sat(Eq(x(6) + y(10) - 3))            # gcd 2 does not divide 3

    def test_dark_shadow_gap(self):
        # 0 < 4x < 4 has no integer solution although rationals exist.
        assert not sat(Geq(x(4) - 1), Geq(3 - x(4)))

    def test_congruence_window(self):
        # x ≡ 0 (mod 4), 1 <= x <= 3: unsat; widen to 4: sat.
        assert not sat(Cong(x(), 4), Geq(x() - 1), Geq(3 - x()))
        assert sat(Cong(x(), 4), Geq(x() - 1), Geq(4 - x()))

    def test_congruence_with_coefficient(self):
        # 2x ≡ 1 (mod 4) has no solution (2x is always even).
        assert not sat(Cong(x(2) - 1, 4))
        # 3x ≡ 1 (mod 4) does (x = 3).
        assert sat(Cong(x(3) - 1, 4))

    def test_unbounded_direction(self):
        assert sat(Geq(x() - 1000000))

    def test_two_variable_system(self):
        # x + y >= 10, x <= 2, y <= 3 -> max sum 5: unsat.
        assert not sat(Geq(x() + y() - 10), Geq(2 - x()), Geq(3 - y()))


class TestNormalize:
    def test_gcd_tightening(self):
        # 2x - 1 >= 0 tightens to x - 1 >= 0 (x >= 0.5 -> x >= 1).
        c = normalize(Constraints(geqs=[x(2) - 1]))
        assert c.geqs == [x() - 1]

    def test_unsat_equality_detected(self):
        assert normalize(Constraints(eqs=[x(2) - 1])) is None

    def test_duplicate_removal(self):
        c = normalize(Constraints(geqs=[x(), x()]))
        assert len(c.geqs) == 1


class TestProjection:
    def test_project_away_bounded_variable(self):
        # exists x: y <= x <= y+5  -> true for all y.
        c = Constraints(geqs=[x() - y(), y() + 5 - x()])
        pieces = project(c, ["x"])
        assert any(p.is_trivially_true for p in pieces)

    def test_project_transfers_bounds(self):
        # exists x: 0 <= x, x <= y - 1  ->  y >= 1.
        c = Constraints(geqs=[x(), y() - 1 - x()])
        pieces = project(c, ["x"])
        assert pieces
        # Every piece must imply y >= 1: check satisfiability with y = 0.
        for piece in pieces:
            zeroed = piece.substitute("y", Linear.const(0))
            assert not satisfiable(zeroed)

    def test_unsat_projects_to_empty(self):
        c = Constraints(geqs=[x() - 3, 2 - x()])
        assert project(c, ["x"]) == []

    def test_project_real_is_fm(self):
        # Real shadow of 2 <= 3x <= y: y >= 6... for rationals y > 5;
        # FM gives 3*y - 3*2 >= 0 style constraints without x.
        c = Constraints(geqs=[x(3) - 2, y() - x(3)])
        out = project_real(c, ["x"])
        assert "x" not in out.variables()
        assert satisfiable(out.substitute("y", Linear.const(6)))


def _evaluate(atom, env):
    value = atom.term.evaluate(env)
    if isinstance(atom, Geq):
        return value >= 0
    if isinstance(atom, Eq):
        return value == 0
    return value % atom.modulus == 0


_atom = st.builds(
    lambda coeffs, const, kind, mod: (
        Geq(Linear(coeffs, const)) if kind == 0
        else Eq(Linear(coeffs, const)) if kind == 1
        else Cong(Linear(coeffs, const), mod)),
    st.dictionaries(st.sampled_from(["x", "y"]), st.integers(-5, 5),
                    min_size=1, max_size=2),
    st.integers(-12, 12),
    st.integers(0, 2),
    st.sampled_from([2, 3, 4, 5]),
)


class TestExactnessProperty:
    @given(st.lists(_atom, min_size=1, max_size=4))
    @settings(max_examples=150, deadline=None)
    def test_agrees_with_brute_force_on_boxed_systems(self, atoms):
        # Add a box so brute force over the box is complete.
        box = [Geq(Linear({"x": 1}, 8)), Geq(Linear({"x": -1}, 8)),
               Geq(Linear({"y": 1}, 8)), Geq(Linear({"y": -1}, 8))]
        all_atoms = [a for a in atoms if not isinstance(a, bool)] + box
        got = satisfiable(Constraints.from_atoms(all_atoms))
        brute = any(
            all(_evaluate(a, {"x": vx, "y": vy}) for a in all_atoms)
            for vx, vy in itertools.product(range(-8, 9), repeat=2))
        assert got == brute

    @given(st.lists(_atom, min_size=1, max_size=3))
    @settings(max_examples=80, deadline=None)
    def test_projection_preserves_satisfiability(self, atoms):
        c = Constraints.from_atoms(atoms)
        direct = satisfiable(c)
        pieces = project(c, ["x"])
        projected = any(satisfiable(p) for p in pieces)
        assert direct == projected
