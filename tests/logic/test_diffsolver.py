"""Difference-constraint fast path: unit tests plus an exactness
property against the full Omega solver."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic import Prover
from repro.logic.diffsolver import (
    as_difference_system, solve_difference_system, try_satisfiable,
)
from repro.logic.formula import Cong, Eq, Geq
from repro.logic.omega import Constraints, satisfiable
from repro.logic.terms import Linear


def geq(coeffs, const=0):
    return Geq(Linear(coeffs, const))


class TestFragmentRecognition:
    def test_difference_atom(self):
        system = as_difference_system([geq({"x": 1, "y": -1}, 3)])
        assert system == [("x", "y", 3)]

    def test_single_variable_bounds(self):
        lower = as_difference_system([geq({"x": 1}, 2)])   # x >= -2
        upper = as_difference_system([geq({"x": -1}, 5)])  # x <= 5
        assert lower == [("x", "$zero", 2)]
        assert upper == [("$zero", "x", 5)]

    def test_equality_becomes_two_edges(self):
        system = as_difference_system([Eq(Linear({"x": 1, "y": -1}))])
        assert len(system) == 2

    def test_scaled_coefficients_rejected(self):
        assert as_difference_system([geq({"x": 2, "y": -1})]) is None
        assert as_difference_system([geq({"x": 2})]) is None

    def test_three_variables_rejected(self):
        assert as_difference_system(
            [geq({"x": 1, "y": -1, "z": 1})]) is None

    def test_congruence_rejected(self):
        assert as_difference_system([Cong(Linear({"x": 1}), 4)]) is None


class TestSolving:
    def test_consistent_chain(self):
        # x <= y <= z <= x is satisfiable (all equal).
        atoms = [geq({"y": 1, "x": -1}), geq({"z": 1, "y": -1}),
                 geq({"x": 1, "z": -1})]
        assert try_satisfiable(atoms) is True

    def test_negative_cycle_detected(self):
        # x < y < x: unsatisfiable.
        atoms = [geq({"y": 1, "x": -1}, -1), geq({"x": 1, "y": -1}, -1)]
        assert try_satisfiable(atoms) is False

    def test_window_too_tight(self):
        # 3 <= x <= 2.
        atoms = [geq({"x": 1}, -3), geq({"x": -1}, 2)]
        assert try_satisfiable(atoms) is False

    def test_window_exact(self):
        atoms = [geq({"x": 1}, -2), geq({"x": -1}, 2)]
        assert try_satisfiable(atoms) is True

    def test_empty_system(self):
        assert try_satisfiable([]) is True

    def test_ground_contradiction(self):
        assert try_satisfiable([Geq(Linear({}, -1))]) is False


_diff_atom = st.builds(
    lambda pair, const, single: (
        geq({pair[0]: 1}, const) if single == 1
        else geq({pair[0]: -1}, const) if single == 2
        else geq({pair[0]: 1, pair[1]: -1}, const)),
    st.sampled_from([("a", "b"), ("b", "c"), ("a", "c")]),
    st.integers(min_value=-8, max_value=8),
    st.integers(min_value=0, max_value=2),
)


class TestExactness:
    @given(st.lists(_diff_atom, min_size=1, max_size=6))
    @settings(max_examples=200, deadline=None)
    def test_agrees_with_omega(self, atoms):
        fast = try_satisfiable(atoms)
        assert fast is not None
        full = satisfiable(Constraints.from_atoms(atoms))
        assert fast == full


class TestProverIntegration:
    def test_fast_path_hit_counted(self):
        prover = Prover(enable_difference_fast_path=True)
        x, y = Linear.var("x"), Linear.var("y")
        from repro.logic import conj, ge, lt
        prover.is_satisfiable(conj(lt(x, y), lt(y, x)))
        assert prover.stats.difference_fast_path_hits >= 1

    def test_verdicts_identical_with_and_without(self):
        from repro.logic import conj, ge, lt, ne
        x, y = Linear.var("x"), Linear.var("y")
        cases = [conj(lt(x, y), lt(y, x)),
                 conj(ge(x, 0), lt(x, y)),
                 ne(x, y)]
        fast = Prover(enable_difference_fast_path=True)
        slow = Prover(enable_difference_fast_path=False)
        for case in cases:
            assert fast.is_satisfiable(case) == slow.is_satisfiable(case)
