"""Obligation slicing and incremental prover sessions are pure
optimizations: every configuration must agree on every verdict.

Covers the union-find component splitter (:func:`_split_components`),
randomized slicing-on/off satisfiability parity, and randomized
:class:`PrefixSession` parity against the from-scratch pipeline —
including the fallback configurations (``--no-incremental`` and the
canonical cache disabled) that route sessions through the plain path.
"""

import random

import pytest

from repro.logic.formula import (
    TRUE, conj, congruent, disj, eq, exists, ge, le, neg,
)
from repro.logic.prover import Prover, _split_components
from repro.logic.terms import Linear

var = Linear.var


def _atom_set(atoms):
    return [set(map(str, component))
            for component in _split_components(atoms)]


class TestSplitComponents:
    def test_independent_atoms_split(self):
        atoms = (ge("x", 0), ge("y", 1), ge("z", 2))
        assert len(_split_components(atoms)) == 3

    def test_shared_variable_merges(self):
        a, b, c = ge(var("x") + var("y"), 0), ge("y", 1), ge("z", 0)
        components = _split_components((a, b, c))
        assert _atom_set((a, b, c)) == [{str(a), str(b)}, {str(c)}]
        assert len(components) == 2

    def test_transitive_chain_merges(self):
        atoms = (ge(var("a") + var("b"), 0),
                 ge(var("b") + var("c"), 0),
                 ge(var("c") + var("d"), 0))
        assert len(_split_components(atoms)) == 1

    def test_ground_atoms_form_one_component(self):
        atoms = (ge(Linear.const(1), 0), ge("x", 0),
                 ge(Linear.const(-1), 0))
        components = _split_components(atoms)
        assert len(components) == 2
        assert _atom_set(atoms)[-1] == {str(atoms[0]), str(atoms[2])}

    def test_component_order_is_first_appearance(self):
        atoms = (ge("q", 0), ge("a", 0), ge(var("q") + var("z"), 1))
        components = _split_components(atoms)
        assert str(components[0][0]) == str(atoms[0])
        assert str(components[1][0]) == str(atoms[1])


def _random_atom(rng, variables):
    kind = rng.random()
    term = Linear(
        {v: rng.randint(-4, 4) for v in
         rng.sample(variables, rng.randint(1, min(3, len(variables))))},
        rng.randint(-20, 20))
    if kind < 0.6:
        return ge(term, 0)
    if kind < 0.85:
        return eq(term, 0)
    return congruent(term, rng.choice([2, 4]))


def _random_formula(rng, variables, depth=2):
    if depth == 0 or rng.random() < 0.4:
        return _random_atom(rng, variables)
    op = rng.random()
    parts = [_random_formula(rng, variables, depth - 1)
             for _ in range(rng.randint(2, 3))]
    if op < 0.45:
        return conj(*parts)
    if op < 0.9:
        return disj(*parts)
    return exists([rng.choice(variables)], parts[0])


@pytest.mark.parametrize("seed", range(250))
def test_slicing_preserves_satisfiability(seed):
    rng = random.Random(31_000 + seed)
    f = _random_formula(rng, ["x", "y", "z", "u", "v", "w"], depth=3)
    sliced = Prover(enable_slicing=True).is_satisfiable(f)
    whole = Prover(enable_slicing=False).is_satisfiable(f)
    assert sliced == whole


@pytest.mark.parametrize("seed", range(250))
def test_prefix_session_matches_from_scratch(seed):
    rng = random.Random(77_000 + seed)
    variables = ["x", "y", "z", "u", "v"]
    prefix = _random_formula(rng, variables, depth=2)
    deltas = [_random_formula(rng, variables, depth=2)
              for _ in range(4)]
    goal = _random_formula(rng, variables, depth=1)

    session_prover = Prover()
    session = session_prover.prefix_session(prefix)
    plain = Prover()
    for delta in deltas:
        assert session.satisfiable_with(delta) \
            == plain.is_satisfiable(conj(prefix, delta))
    assert session.implies(goal) \
        == plain.implies(prefix, goal)
    assert session.implies(goal, extra=deltas[0]) \
        == plain.implies(conj(prefix, deltas[0]), goal)
    assert session.refutes(deltas[1]) \
        == (not plain.is_satisfiable(conj(prefix, deltas[1])))


@pytest.mark.parametrize("seed", range(0, 250, 25))
@pytest.mark.parametrize("fallback_config", [
    dict(enable_incremental=False),
    dict(enable_canonical_cache=False),
])
def test_fallback_sessions_match_too(seed, fallback_config):
    rng = random.Random(44_000 + seed)
    variables = ["x", "y", "z"]
    prefix = _random_formula(rng, variables, depth=2)
    delta = _random_formula(rng, variables, depth=2)
    session_prover = Prover(**fallback_config)
    session = session_prover.prefix_session(prefix)
    plain = Prover()
    assert session.satisfiable_with(delta) \
        == plain.is_satisfiable(conj(prefix, delta))


class TestSessionBookkeeping:
    def test_counters_mirror_plain_queries(self):
        prover = Prover()
        session = prover.prefix_session(ge("x", 0))
        session.implies(ge("x", -1))
        assert prover.stats.validity_queries == 1
        assert prover.stats.satisfiability_queries == 1
        assert prover.stats.incremental_queries == 1

    def test_session_memo_hits(self):
        prover = Prover()
        session = prover.prefix_session(ge("x", 0))
        delta = le("x", 5)
        first = session.satisfiable_with(delta)
        hits = prover.stats.cache_hits
        assert session.satisfiable_with(delta) == first
        assert prover.stats.cache_hits == hits + 1

    def test_unsat_prefix_decides_everything_false(self):
        prover = Prover()
        session = prover.prefix_session(
            conj(ge("x", 1), le("x", 0)))
        assert not session.satisfiable_with(TRUE)
        assert session.implies(ge("y", 100))

    def test_true_extra_matches_none(self):
        prover = Prover()
        session = prover.prefix_session(ge("x", 3))
        goal = ge("x", 0)
        assert session.implies(goal) \
            == session.implies(goal, extra=TRUE)

    def test_negated_goal_is_not_double_negated(self):
        prover = Prover()
        session = prover.prefix_session(ge("x", 3))
        assert session.implies(ge("x", 1))
        assert not session.implies(ge("x", 4))
        assert session.implies(neg(le("x", 1)))
