"""Round-trips of the portable formula encoding behind
``--trace-formulas`` / ``--prover-replay``: ``formula_to_obj`` →
(JSON) → ``formula_from_obj`` must reproduce the exact hash-consed
node."""

import json
import random

import pytest

from repro.logic.formula import (
    FALSE, TRUE, conj, congruent, disj, eq, exists, forall, ge, neg,
)
from repro.logic.serialize import formula_from_obj, formula_to_obj
from repro.logic.terms import Linear


def _random_formula(rng, depth=3):
    variables = ["x", "y", "z", "w"]
    if depth == 0 or rng.random() < 0.35:
        term = Linear({v: rng.randint(-5, 5)
                       for v in rng.sample(variables, 2)},
                      rng.randint(-9, 9))
        return rng.choice([ge(term, 0), eq(term, 0),
                           congruent(term, rng.choice([2, 4, 8]))])
    kind = rng.random()
    if kind < 0.35:
        return conj(*[_random_formula(rng, depth - 1)
                      for _ in range(2)])
    if kind < 0.7:
        return disj(*[_random_formula(rng, depth - 1)
                      for _ in range(2)])
    if kind < 0.8:
        return neg(_random_formula(rng, depth - 1))
    if kind < 0.9:
        return exists([rng.choice(variables)],
                      _random_formula(rng, depth - 1))
    return forall([rng.choice(variables)],
                  _random_formula(rng, depth - 1))


@pytest.mark.parametrize("seed", range(200))
def test_roundtrip_is_identity(seed):
    f = _random_formula(random.Random(12_000 + seed))
    assert formula_from_obj(formula_to_obj(f)) is f


@pytest.mark.parametrize("seed", range(0, 200, 10))
def test_roundtrip_survives_json(seed):
    f = _random_formula(random.Random(12_000 + seed))
    encoded = json.dumps(formula_to_obj(f))
    assert formula_from_obj(json.loads(encoded)) is f


def test_constants():
    for f in (TRUE, FALSE):
        assert formula_from_obj(
            json.loads(json.dumps(formula_to_obj(f)))) is f


def test_unknown_tag_rejected():
    with pytest.raises(ValueError):
        formula_from_obj(["xor", ["true"], ["false"]])
    with pytest.raises(ValueError):
        formula_from_obj([])
    with pytest.raises(ValueError):
        formula_from_obj("true")
