"""Linear-term arithmetic tests, including hypothesis properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic.terms import Linear, ZERO, linear


class TestConstruction:
    def test_zero_coefficients_dropped(self):
        term = Linear({"x": 0, "y": 2})
        assert term.coefficient("x") == 0
        assert list(term.variables()) == ["y"]

    def test_var_and_const_helpers(self):
        assert Linear.var("x") == Linear({"x": 1})
        assert Linear.const(7).constant == 7
        assert linear("x") == Linear.var("x")
        assert linear(3) == Linear.const(3)
        assert linear(Linear.var("y")) == Linear.var("y")

    def test_is_constant(self):
        assert Linear.const(5).is_constant
        assert not Linear.var("x").is_constant


class TestArithmetic:
    def test_addition_merges_coefficients(self):
        a = Linear({"x": 2, "y": 1}, 3)
        b = Linear({"x": -2, "z": 5}, -1)
        total = a + b
        assert total.coefficient("x") == 0
        assert total.coefficient("y") == 1
        assert total.coefficient("z") == 5
        assert total.constant == 2

    def test_int_addition_both_sides(self):
        x = Linear.var("x")
        assert (x + 3).constant == 3
        assert (3 + x).constant == 3

    def test_subtraction_and_negation(self):
        x, y = Linear.var("x"), Linear.var("y")
        assert (x - y).coefficient("y") == -1
        assert (5 - x).coefficient("x") == -1
        assert (-x).coefficient("x") == -1

    def test_scale(self):
        term = Linear({"x": 3}, 2).scale(4)
        assert term.coefficient("x") == 12 and term.constant == 8
        assert Linear({"x": 3}).scale(0) == ZERO

    def test_divide_exact(self):
        term = Linear({"x": 4}, 8).divide_exact(4)
        assert term == Linear({"x": 1}, 2)
        with pytest.raises(ValueError):
            Linear({"x": 3}).divide_exact(2)

    def test_content(self):
        assert Linear({"x": 6, "y": 9}).content() == 3
        assert Linear.const(4).content() == 0


class TestSubstitution:
    def test_substitute_simple(self):
        term = Linear({"x": 2, "y": 1})
        out = term.substitute("x", Linear({"z": 1}, 5))
        assert out == Linear({"z": 2, "y": 1}, 10)

    def test_substitute_absent_variable_is_noop(self):
        term = Linear({"y": 1})
        assert term.substitute("x", Linear.const(9)) is term

    def test_substitute_all_is_simultaneous(self):
        # x -> y, y -> x must swap, not cascade.
        term = Linear({"x": 1, "y": 2})
        out = term.substitute_all({"x": Linear.var("y"),
                                   "y": Linear.var("x")})
        assert out == Linear({"y": 1, "x": 2})

    def test_rename_merges(self):
        term = Linear({"x": 1, "y": 2})
        assert term.rename({"y": "x"}) == Linear({"x": 3})

    def test_evaluate(self):
        term = Linear({"x": 2, "y": -1}, 7)
        assert term.evaluate({"x": 3, "y": 4}) == 9


_terms = st.builds(
    Linear,
    st.dictionaries(st.sampled_from(["a", "b", "c"]),
                    st.integers(-9, 9), max_size=3),
    st.integers(-50, 50),
)
_vals = st.fixed_dictionaries({v: st.integers(-20, 20)
                               for v in ["a", "b", "c"]})


class TestAlgebraicProperties:
    @given(_terms, _terms, _vals)
    @settings(max_examples=200, deadline=None)
    def test_addition_agrees_with_evaluation(self, s, t, env):
        assert (s + t).evaluate(env) == s.evaluate(env) + t.evaluate(env)

    @given(_terms, st.integers(-6, 6), _vals)
    @settings(max_examples=200, deadline=None)
    def test_scale_agrees_with_evaluation(self, s, k, env):
        assert s.scale(k).evaluate(env) == k * s.evaluate(env)

    @given(_terms, _terms)
    @settings(max_examples=200, deadline=None)
    def test_addition_commutes(self, s, t):
        assert s + t == t + s

    @given(_terms, _terms, _vals)
    @settings(max_examples=200, deadline=None)
    def test_substitution_agrees_with_evaluation(self, s, t, env):
        substituted = s.substitute("a", t)
        expected_env = dict(env)
        expected_env["a"] = t.evaluate(env)
        assert substituted.evaluate(env) == s.evaluate(expected_env)

    @given(_terms)
    @settings(max_examples=100, deadline=None)
    def test_hash_consistent_with_equality(self, s):
        clone = Linear(dict(s.coefficients), s.constant)
        assert s == clone and hash(s) == hash(clone)
