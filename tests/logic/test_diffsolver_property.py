"""Property test: the difference-constraint fast path agrees with the
Omega test on random difference systems.

The prover trusts :func:`repro.logic.diffsolver.try_satisfiable`
whenever a conjunction falls inside the difference fragment, so any
disagreement with the general decision procedure would be a soundness
bug.  This generates ~200 seeded random systems spanning satisfiable,
unsatisfiable, and degenerate shapes and cross-checks every one.
"""

import random

import pytest

from repro.logic.diffsolver import try_satisfiable
from repro.logic.formula import Eq, Geq
from repro.logic.omega import Constraints, satisfiable
from repro.logic.terms import Linear

VARIABLES = ["a", "b", "c", "d", "e"]


def _random_difference_atom(rng):
    """One atom inside the difference fragment: x − y + c ≥ 0,
    ±x + c ≥ 0, or the equality variants."""
    shape = rng.randrange(4)
    constant = rng.randint(-6, 6)
    if shape == 0:
        x, y = rng.sample(VARIABLES, 2)
        term = Linear({x: 1, y: -1}, constant)
    elif shape == 1:
        term = Linear({rng.choice(VARIABLES): 1}, constant)
    elif shape == 2:
        term = Linear({rng.choice(VARIABLES): -1}, constant)
    else:
        x, y = rng.sample(VARIABLES, 2)
        term = Linear({x: 1, y: -1}, constant)
        return Eq(term)
    return Geq(term)


def _random_system(rng):
    count = rng.randint(1, 8)
    return [_random_difference_atom(rng) for _ in range(count)]


@pytest.mark.parametrize("seed", range(200))
def test_diffsolver_agrees_with_omega(seed):
    rng = random.Random(0xD1FF + seed)
    atoms = _random_system(rng)
    fast = try_satisfiable(atoms)
    assert fast is not None, \
        "generated system left the difference fragment: %r" % (atoms,)
    exact = satisfiable(Constraints.from_atoms(tuple(atoms)))
    assert fast == exact, \
        "diffsolver=%s omega=%s on %r" % (fast, exact, atoms)


def test_known_negative_cycle_is_unsat():
    # a − b ≥ 1, b − c ≥ 1, c − a ≥ 1 sums to 0 ≥ 3: a negative cycle.
    atoms = [
        Geq(Linear({"a": 1, "b": -1}, -1)),
        Geq(Linear({"b": 1, "c": -1}, -1)),
        Geq(Linear({"c": 1, "a": -1}, -1)),
    ]
    assert try_satisfiable(atoms) is False
    assert satisfiable(Constraints.from_atoms(tuple(atoms))) is False


def test_chain_of_bounds_is_sat():
    # 0 ≤ a ≤ b ≤ c ≤ 10.
    atoms = [
        Geq(Linear({"a": 1}, 0)),
        Geq(Linear({"b": 1, "a": -1}, 0)),
        Geq(Linear({"c": 1, "b": -1}, 0)),
        Geq(Linear({"c": -1}, 10)),
    ]
    assert try_satisfiable(atoms) is True
    assert satisfiable(Constraints.from_atoms(tuple(atoms))) is True


def test_outside_fragment_returns_none():
    atoms = [Geq(Linear({"a": 2, "b": -1}, 0))]
    assert try_satisfiable(atoms) is None
