"""Cross-backend parity: equivalent programs on the SPARC and RISC-V
frontends must produce identical verdicts from the unchanged analysis
core — the acceptance test for the architecture-neutral IR."""

import pytest

from repro.analysis.checker import check_assembly

# One writable int[10] array bound to the first argument register; the
# two specs are identical except for the architecture's register name.
_SPEC_TEMPLATE = """
loc e   : int    = initialized  perms rwo  region V summary
loc arr : int[n] = {e}          perms rwfo region V
rule [V : int : rwo]
rule [V : int[n] : rwfo]
invoke %s = arr
assume n = 10
"""

SPARC_SPEC = _SPEC_TEMPLATE % "%o0"
RISCV_SPEC = _SPEC_TEMPLATE % "a0"

# Same shape on both machines: one store at a constant byte offset into
# the array (instruction 1), then return.  Offset 0 is in bounds;
# offset 40 is one element past the end of int[10].
SPARC_WRITE = """
1: st %g0,[%o0+{offset}]
2: retl
3: nop
"""

RISCV_WRITE = """
1: sw zero,{offset}(a0)
2: ret
"""


def _verdicts(offset):
    sparc = check_assembly(SPARC_WRITE.format(offset=offset),
                           SPARC_SPEC, name="w-sparc", arch="sparc")
    riscv = check_assembly(RISCV_WRITE.format(offset=offset),
                           RISCV_SPEC, name="w-riscv", arch="riscv")
    return sparc, riscv


class TestArrayWriteParity:
    def test_in_bounds_write_safe_on_both(self):
        sparc, riscv = _verdicts(0)
        assert sparc.safe and riscv.safe

    def test_out_of_bounds_write_flagged_identically(self):
        sparc, riscv = _verdicts(40)
        assert not sparc.safe and not riscv.safe
        flag = lambda r: {(v.index, v.category) for v in r.violations}
        assert flag(sparc) == flag(riscv)
        assert (1, "array-bounds") in flag(sparc)

    def test_same_condition_counts(self):
        sparc, riscv = _verdicts(0)
        assert (sparc.characteristics.global_conditions
                == riscv.characteristics.global_conditions)


class TestLoopParity:
    """The paper's Sum example on both machines: the loop bound needs
    invariant synthesis, exercising the full phase-5 machinery through
    each frontend."""

    SPARC_SUM_SPEC = """
loc e   : int    = initialized  perms ro  region V summary
loc arr : int[n] = {e}          perms rfo region V
rule [V : int : ro]
rule [V : int[n] : rfo]
invoke %o0 = arr
invoke %o1 = n
assume n >= 1
"""

    RISCV_SUM_SPEC = SPARC_SUM_SPEC.replace(
        "invoke %o0", "invoke a0").replace("invoke %o1", "invoke a1")

    SPARC_SUM = """
1: mov %o0,%o2
2: clr %o0
3: cmp %o0,%o1
4: bge 12
5: clr %g3
6: sll %g3, 2,%g2
7: ld [%o2+%g2],%g2
8: inc %g3
9: cmp %g3,%o1
10:bl 6
11:add %o0,%g2,%o0
12:retl
13:nop
"""

    # RISC-V has no reg+reg addressing: the element access goes through
    # an explicit pointer (add + lw), a mid-array pointer in the IR.
    RISCV_SUM = """
1: mv a2,a0
2: li a0,0
3: li t0,0
4: bge t0,a1,11
5: slli t1,t0,2
6: add t2,a2,t1
7: lw t1,0(t2)
8: addi t0,t0,1
9: add a0,a0,t1
10: blt t0,a1,5
11: ret
"""

    def test_sum_safe_on_both(self):
        sparc = check_assembly(self.SPARC_SUM, self.SPARC_SUM_SPEC,
                               name="sum-sparc", arch="sparc")
        riscv = check_assembly(self.RISCV_SUM, self.RISCV_SUM_SPEC,
                               name="sum-riscv", arch="riscv")
        assert sparc.safe and riscv.safe
        assert sparc.induction_runs >= 1
        assert riscv.induction_runs >= 1

    @pytest.mark.parametrize("sparc_break,riscv_break", [
        # Off-by-one loop bound: <= instead of <.
        (("bl 6", "ble 6"), ("blt t0,a1,5", "bge a1,t0,5")),
    ])
    def test_off_by_one_unsafe_on_both(self, sparc_break, riscv_break):
        sparc = check_assembly(
            self.SPARC_SUM.replace(*sparc_break), self.SPARC_SUM_SPEC,
            name="oob-sparc", arch="sparc")
        riscv = check_assembly(
            self.RISCV_SUM.replace(*riscv_break), self.RISCV_SUM_SPEC,
            name="oob-riscv", arch="riscv")
        assert not sparc.safe and not riscv.safe
        assert any(v.category == "array-bounds"
                   for v in sparc.violations)
        assert any(v.category == "array-bounds"
                   for v in riscv.violations)
