"""Unit tests for the SPARC → IR lowering: every instruction kind maps
to exactly one IR op with the expected shape."""

import pytest

from repro.ir.ops import (
    AddrExpr, Assign, BinOp, Call, CondBranch, ConstOp, IndirectJump,
    Load, Nop, RegOp, SetConst, Store, Unsupported,
)
from repro.ir.program import MachineProgram
from repro.sparc import assemble
from repro.sparc.lower import SPARC_ARCH, lower_instruction


def low(text):
    """Assemble one instruction and lower it."""
    return lower_instruction(assemble(text).instruction(1))


class TestAluLowering:
    @pytest.mark.parametrize("mnemonic,binop", [
        ("add", BinOp.ADD), ("sub", BinOp.SUB), ("and", BinOp.AND),
        ("or", BinOp.OR), ("xor", BinOp.XOR), ("andn", BinOp.ANDN),
        ("orn", BinOp.ORN), ("xnor", BinOp.XNOR), ("sll", BinOp.SLL),
        ("srl", BinOp.SRL), ("sra", BinOp.SRA), ("smul", BinOp.MUL),
        ("umul", BinOp.UMUL), ("sdiv", BinOp.DIV), ("udiv", BinOp.UDIV),
    ])
    def test_binop_map(self, mnemonic, binop):
        op = low("%s %%o1,%%o2,%%o3" % mnemonic)
        assert isinstance(op, Assign)
        assert op.op is binop
        assert op.dest == "%o3"
        assert op.src1 == RegOp("%o1")
        assert op.src2 == RegOp("%o2")
        assert not op.sets_cc

    @pytest.mark.parametrize("mnemonic,binop", [
        ("addcc", BinOp.ADD), ("subcc", BinOp.SUB), ("andcc", BinOp.AND),
        ("orcc", BinOp.OR),
    ])
    def test_cc_variants_set_flag(self, mnemonic, binop):
        op = low("%s %%o1,%%o2,%%o3" % mnemonic)
        assert isinstance(op, Assign)
        assert op.op is binop
        assert op.sets_cc

    def test_immediate_operand(self):
        op = low("add %o1,5,%o3")
        assert op.src2 == ConstOp(5)

    def test_g0_source_becomes_constant_zero(self):
        op = low("add %g0,%o2,%o3")
        assert op.src1 == ConstOp(0)

    def test_g0_destination_is_discarded(self):
        op = low("add %o1,%o2,%g0")
        assert isinstance(op, Assign)
        assert op.dest is None

    def test_mov_is_canonical_move_form(self):
        # mov expands to `or %g0,rs,rd`: the IR move pattern.
        op = low("mov %o0,%o2")
        assert isinstance(op, Assign)
        assert op.op is BinOp.OR
        assert op.src1 == ConstOp(0)
        assert op.src2 == RegOp("%o0")
        assert op.dest == "%o2"

    def test_cmp_is_discarded_subcc(self):
        op = low("cmp %o0,%o1")
        assert isinstance(op, Assign)
        assert op.op is BinOp.SUB
        assert op.dest is None and op.sets_cc

    def test_raw_backpointer_and_text(self):
        op = low("add %o1,%o2,%o3")
        assert op.raw is not None and op.raw.op == "add"
        assert op.text == "add %o1,%o2,%o3"


class TestConstantAndNop:
    def test_sethi(self):
        # The ISA layer stores the already-shifted value in op2.
        op = low("sethi %hi(0x1000),%o1")
        assert isinstance(op, SetConst)
        assert op.dest == "%o1"
        assert op.value == 0x1000

    def test_nop_is_nop(self):
        # nop == sethi 0,%g0
        assert isinstance(low("nop"), Nop)

    def test_clr_is_move_of_zero(self):
        op = low("clr %g3")
        assert isinstance(op, Assign)
        assert op.dest == "%g3"
        assert op.src1 == ConstOp(0) and op.src2 == ConstOp(0)


class TestMemoryLowering:
    @pytest.mark.parametrize("mnemonic,width,signed", [
        ("ld", 4, True), ("ldsb", 1, True), ("ldsh", 2, True),
        ("ldub", 1, False), ("lduh", 2, False),
    ])
    def test_load_width_and_signedness(self, mnemonic, width, signed):
        op = low("%s [%%o2+4],%%g1" % mnemonic)
        assert isinstance(op, Load)
        assert op.dest == "%g1"
        assert op.width == width and op.signed is signed
        assert op.addr == AddrExpr(base="%o2", offset=4)

    def test_unsigned_range_metadata(self):
        # The satellite: width/signedness metadata replaces the old
        # inline {"ldub": 256, "lduh": 65536} table.
        assert low("ldub [%o2],%g1").unsigned_range == 256
        assert low("lduh [%o2],%g1").unsigned_range == 65536
        assert low("ld [%o2],%g1").unsigned_range is None
        assert low("ldsb [%o2],%g1").unsigned_range is None

    def test_register_indexed_address(self):
        op = low("ld [%o2+%g2],%g2")
        assert op.addr == AddrExpr(base="%o2", index="%g2")

    def test_g0_index_dropped(self):
        op = low("ld [%o2+%g0],%g2")
        assert op.addr == AddrExpr(base="%o2", index=None, offset=0)

    @pytest.mark.parametrize("mnemonic,width", [
        ("st", 4), ("stb", 1), ("sth", 2),
    ])
    def test_store_width(self, mnemonic, width):
        op = low("%s %%g1,[%%o3]" % mnemonic)
        assert isinstance(op, Store)
        assert op.src == RegOp("%g1")
        assert op.width == width

    def test_store_of_g0_is_constant_zero(self):
        assert low("st %g0,[%o3]").src == ConstOp(0)


class TestControlLowering:
    def test_conditional_branch(self):
        op = low("bl 1")
        assert isinstance(op, CondBranch)
        assert op.relation == "<"
        assert op.lhs == RegOp("$icc") and op.rhs == ConstOp(0)
        assert op.target == 1
        assert not op.unconditional and not op.annul
        assert op.delay_slots == 1

    def test_branch_always_and_never(self):
        assert low("ba 1").unconditional
        assert low("bn 1").never

    def test_annul_bit(self):
        assert low("bl,a 1").annul

    def test_unsigned_relation_mapped(self):
        assert low("blu 1").relation == "<"
        assert low("bgeu 1").relation == ">="

    def test_internal_call(self):
        program = assemble("call f\nnop\nf: retl\nnop").lower()
        op = program.instruction(1)
        assert isinstance(op, Call)
        assert op.target == 3 and op.target_label == "f"
        assert op.link == "%o7" and op.delay_slots == 1

    def test_external_call_has_target_zero(self):
        op = low("call some_host_fn")
        assert isinstance(op, Call)
        assert op.target == 0 and op.target_label == "some_host_fn"

    def test_retl_is_return(self):
        op = low("retl")
        assert isinstance(op, IndirectJump)
        assert op.base == "%o7" and op.offset == 8
        assert op.is_return and op.link is None

    def test_jmp_register(self):
        op = low("jmp %g1")
        assert isinstance(op, IndirectJump)
        assert op.base == "%g1" and not op.is_return


class TestUnsupportedLowering:
    def test_save_restore(self):
        for text in ("save %sp,-96,%sp", "restore"):
            op = low(text)
            assert isinstance(op, Unsupported)
            assert "register windows" in op.reason


class TestLoweredProgram:
    def test_one_op_per_instruction_with_backpointers(self):
        source = "1: mov %o0,%o2\n2: ld [%o2],%g1\n3: retl\n4: nop"
        raw = assemble(source)
        program = raw.lower()
        assert isinstance(program, MachineProgram)
        assert len(program) == len(raw)
        assert program.arch is SPARC_ARCH
        for op, inst in zip(program, raw):
            assert op.index == inst.index
            assert op.raw is inst

    def test_labels_preserved(self):
        program = assemble("f: retl\nnop").lower()
        assert program.label_index("f") == 1

    def test_counts_match_raw_program(self):
        source = ("cmp %o0,%o1\nbl 1\nnop\ncall f\nnop\n"
                  "f: retl\nnop")
        raw = assemble(source)
        assert raw.lower().counts() == raw.counts()
