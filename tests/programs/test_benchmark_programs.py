"""Tests over the 13 re-created benchmark programs: emulation oracles
(differential testing of the SPARC substrate) and checking outcomes for
the fast programs (heavyweights run in the benchmark harness)."""

import pytest

from repro.cfg import CFG, CallGraph, build_cfg, find_loops
from repro.programs import all_programs, fast_programs
from repro.sparc import encode_words

ALL = all_programs()
FAST = fast_programs()


@pytest.mark.parametrize("program", ALL, ids=lambda p: p.name)
class TestStructure:
    def test_assembles(self, program):
        assembled = program.program()
        assert len(assembled) > 0

    def test_spec_parses(self, program):
        spec = program.spec()
        assert spec.invocation.bindings

    def test_instruction_count_in_paper_ballpark(self, program):
        # Different compiler, same order of magnitude (0.4x - 2.5x).
        assembled = program.program()
        paper = program.paper_row.instructions
        assert 0.4 * paper <= len(assembled) <= 2.5 * paper

    def test_loop_structure_matches_paper(self, program):
        assembled = program.program()
        spec = program.spec()
        cfg = build_cfg(assembled, trusted_labels=set(spec.functions))
        loops = sum(find_loops(cfg, fn).count for fn in cfg.functions)
        # Same code shape modulo compiler differences (the paper's gcc
        # emitted a couple of extra loops for MD5/heap-sort library
        # idioms we express more directly).
        assert abs(loops - program.paper_row.loops) <= 2

    def test_no_recursion(self, program):
        assembled = program.program()
        spec = program.spec()
        cfg = build_cfg(assembled, trusted_labels=set(spec.functions))
        CallGraph(cfg).check_no_recursion()


@pytest.mark.parametrize("program", ALL, ids=lambda p: p.name)
def test_emulation_oracle(program):
    """Run the program concretely and compare with a Python oracle —
    differential testing of assembler + emulator + program."""
    program.run_emulation_oracle()


@pytest.mark.parametrize(
    "program",
    [p for p in ALL if all(
        inst.kind.name != "CALL" or inst.target.index != 0
        for inst in p.program())],
    ids=lambda p: p.name)
def test_encodes_to_machine_code(program):
    """Programs without external symbols round through the encoder."""
    words = encode_words(program.program())
    assert len(words) == len(program.program())


@pytest.mark.parametrize("program", FAST, ids=lambda p: p.name)
class TestCheckOutcomes:
    def test_verdict_matches_expectation(self, program):
        result = program.check()
        assert result.safe == program.expect_safe, result.summary()

    def test_flagged_instructions(self, program):
        result = program.check()
        if program.expect_safe:
            assert result.violations == []
            return
        flagged = set(result.violated_instructions())
        assert flagged == set(program.expected_violation_indices), \
            result.summary()
        categories = {v.category for v in result.violations}
        assert categories <= set(program.expected_violation_categories)


class TestSpecificFindings:
    def test_paging_policy_null_deref_found(self):
        from repro.programs import PAGING_POLICY
        result = PAGING_POLICY.check()
        assert not result.safe
        assert all(v.category == "null-pointer"
                   for v in result.violations)

    def test_jpvm_false_alarm_is_the_paper_one(self):
        from repro.programs import JPVM
        result = JPVM.check()
        # Exactly the paper's reported imprecision: an argument to a
        # host function looks uninitialized because the argument vector
        # is summarized (weak updates).
        assert len(result.violations) == 1
        violation = result.violations[0]
        assert violation.category == "trusted-call"
        assert "uninitialized" in violation.description
        assert JPVM.violations_are_false_alarms

    def test_sum_and_btree_need_loop_invariants(self):
        # With forward-bounds propagation disabled (the paper's base
        # configuration), both examples need induction iteration.
        from repro.analysis.options import CheckerOptions
        from repro.programs import BTREE, SUM
        options = CheckerOptions()
        options.enable_forward_bounds = False
        for program in (SUM, BTREE):
            result = program.check(options)
            assert result.safe and result.induction_runs >= 1

    def test_trusted_call_counts(self):
        from repro.programs import JPVM, START_TIMER
        assert START_TIMER.check().characteristics.trusted_calls == 1
        assert JPVM.check().characteristics.trusted_calls >= 10
