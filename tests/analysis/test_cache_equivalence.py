"""The prover caches are pure optimization: a cache-enabled checker
must return exactly the same verdict (safety, flagged instructions,
proof outcomes) as a cache-disabled one on every benchmark program.

The fast programs run in tier-1; the heavyweight rows (heap sorts,
stack-smashing, MD5) carry the ``bench`` marker and are exercised by
the benchmark CI job / ``pytest -m bench``.
"""

import pytest

from repro.analysis.options import CheckerOptions
from repro.programs import all_programs, fast_programs

#: All caching/interning/memoization enhancements on (the defaults).
ENHANCED = CheckerOptions()

#: Everything off — the seed configuration.
SEED = CheckerOptions(
    enable_prover_cache=False,
    enable_canonical_prover_cache=False,
    enable_formula_memoization=False,
)

_FAST = {p.name for p in fast_programs()}


def _verdict(result):
    return (
        result.safe,
        tuple(sorted((v.index, v.category, v.phase)
                     for v in result.violations)),
        tuple(sorted((p.index, p.proved) for p in result.proofs)),
    )


def _check_equivalence(program):
    enhanced = program.check(options=ENHANCED)
    seed = program.check(options=SEED)
    assert _verdict(enhanced) == _verdict(seed), \
        "cache-enabled and cache-disabled checkers disagree on %s" \
        % program.name
    assert enhanced.safe == program.expect_safe


@pytest.mark.parametrize(
    "program", fast_programs(), ids=lambda p: p.name)
def test_fast_programs_cache_on_off_equivalent(program):
    _check_equivalence(program)


@pytest.mark.bench
@pytest.mark.parametrize(
    "program",
    [p for p in all_programs() if p.name not in _FAST],
    ids=lambda p: p.name)
def test_heavy_programs_cache_on_off_equivalent(program):
    _check_equivalence(program)
