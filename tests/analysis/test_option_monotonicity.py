"""Soundness across configurations: the enhancement flags may only
change *what gets proven*, never flip an unsafe program to safe.

Every enhancement is a proof-search aid: turning one off can only lose
proofs (safe → reported-unsafe is acceptable conservatism; the reverse
would be unsoundness).  Also checks determinism: the checker is a pure
function of (program, spec, options).
"""

import itertools

import pytest

from repro.analysis.options import CheckerOptions
from repro.programs import (
    BTREE2, BUBBLE_SORT, HASH, JPVM, PAGING_POLICY, START_TIMER, SUM,
)

_FLAGS = ["enable_disjunct_candidates", "enable_generalization",
          "enable_formula_grouping", "enable_prover_cache",
          "enable_junction_simplification", "enable_forward_bounds"]

#: One configuration per single-flag-off, plus everything-off.
_CONFIGS = [dict.fromkeys([flag], False) for flag in _FLAGS] \
    + [dict.fromkeys(_FLAGS, False)]


def _options(overrides):
    options = CheckerOptions()
    for key, value in overrides.items():
        setattr(options, key, value)
    return options


class TestUnsafeStaysUnsafe:
    @pytest.mark.parametrize("overrides", _CONFIGS,
                             ids=lambda o: "+".join(sorted(o)) or "all")
    def test_paging_policy_never_becomes_safe(self, overrides):
        result = PAGING_POLICY.check(_options(overrides))
        assert not result.safe
        # The two real dereferences stay flagged in every configuration.
        assert {7, 12} <= set(result.violated_instructions())

    @pytest.mark.parametrize("overrides", _CONFIGS,
                             ids=lambda o: "+".join(sorted(o)) or "all")
    def test_jpvm_false_alarm_never_silently_vanishes(self, overrides):
        result = JPVM.check(_options(overrides))
        assert not result.safe


class TestSafeProgramsUnderDegradedSearch:
    """Turning aids off may lose proofs but must never crash, and the
    violations that appear must be of the right categories."""

    @pytest.mark.parametrize("program",
                             [SUM, HASH, BUBBLE_SORT, BTREE2,
                              START_TIMER],
                             ids=lambda p: p.name)
    def test_everything_off_degrades_gracefully(self, program):
        overrides = dict.fromkeys(_FLAGS, False)
        result = program.check(_options(overrides))
        # Only global (prover-strength) conditions may be lost; local
        # typestate checks are configuration-independent.
        assert not result.local_violations

    @pytest.mark.parametrize("program",
                             [SUM, HASH, BUBBLE_SORT, BTREE2],
                             ids=lambda p: p.name)
    def test_full_configuration_proves(self, program):
        assert program.check(CheckerOptions()).safe


class TestDeterminism:
    def test_same_inputs_same_outputs(self):
        first = SUM.check()
        second = SUM.check()
        assert first.safe == second.safe
        assert [str(v) for v in first.violations] \
            == [str(v) for v in second.violations]
        assert first.characteristics.global_conditions \
            == second.characteristics.global_conditions

    def test_violations_stable_across_runs(self):
        runs = [PAGING_POLICY.check().violated_instructions()
                for __ in range(3)]
        assert runs[0] == runs[1] == runs[2]
