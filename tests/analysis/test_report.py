"""Tests for result reporting: CheckResult accessors, Figure 9
rendering, phase times."""

from repro.analysis.annotate import GlobalPredicate
from repro.analysis.report import (
    CheckResult, FIGURE9_COLUMNS, PhaseTimes, ProgramCharacteristics,
    figure9_row, render_figure9,
)
from repro.analysis.verify import ProofRecord, Violation
from repro.logic import TRUE


def make_result(name="demo", safe=True, violations=(), **chars):
    characteristics = ProgramCharacteristics(**chars)
    times = PhaseTimes(preparation=0.001, typestate_propagation=0.01,
                       annotation_and_local=0.002,
                       global_verification=0.1)
    return CheckResult(name=name, safe=safe,
                       characteristics=characteristics, times=times,
                       violations=list(violations))


class TestPhaseTimes:
    def test_total_sums_phases(self):
        times = PhaseTimes(preparation=1, typestate_propagation=2,
                           annotation_and_local=3,
                           global_verification=4)
        assert times.total == 10


class TestCharacteristicsCells:
    def test_loops_cell_with_inner(self):
        c = ProgramCharacteristics(loops=4, inner_loops=2)
        assert c.loops_cell() == "4 (2)"
        assert ProgramCharacteristics(loops=3).loops_cell() == "3"

    def test_calls_cell_with_trusted(self):
        c = ProgramCharacteristics(calls=21, trusted_calls=21)
        assert c.calls_cell() == "21 (21)"
        assert ProgramCharacteristics(calls=2).calls_cell() == "2"


class TestCheckResult:
    def test_violation_partition(self):
        violations = [
            Violation(index=7, category="null-pointer",
                      description="x", phase="global"),
            Violation(index=3, category="access-permission",
                      description="y", phase="local"),
        ]
        result = make_result(safe=False, violations=violations)
        assert len(result.local_violations) == 1
        assert len(result.global_violations) == 1
        assert result.violated_instructions() == [3, 7]

    def test_proved_count(self):
        predicate = GlobalPredicate(formula=TRUE, description="d",
                                    category="c")
        result = make_result()
        result.proofs = [
            ProofRecord(uid=1, index=1, predicate=predicate, proved=True),
            ProofRecord(uid=2, index=2, predicate=predicate,
                        proved=False),
        ]
        assert result.proved_count() == 1

    def test_summary_mentions_violations(self):
        result = make_result(safe=False, violations=[
            Violation(index=9, category="array-bounds",
                      description="oops", phase="global")])
        text = result.summary()
        assert "UNSAFE" in text and "instruction 9" in text


class TestFigure9Rendering:
    def test_row_shape(self):
        row = figure9_row(make_result(instructions=13, branches=2,
                                      loops=1, global_conditions=4))
        assert len(row) == len(FIGURE9_COLUMNS)
        assert row[0] == "demo" and row[-1] == "safe"

    def test_unsafe_row_lists_instructions(self):
        result = make_result(safe=False, violations=[
            Violation(index=7, category="x", description="d",
                      phase="global"),
            Violation(index=12, category="x", description="d",
                      phase="global")])
        row = figure9_row(result)
        assert row[-1] == "violations@7,12"

    def test_table_renders_header_and_rows(self):
        table = render_figure9([make_result(name="a"),
                                make_result(name="b", safe=False)])
        lines = table.splitlines()
        assert lines[0].startswith("Example")
        assert any(line.startswith("a") for line in lines)
        assert any(line.startswith("b") for line in lines)


class TestAnnotatedListing:
    def test_flagged_instruction_marked(self):
        from repro.programs.paging_policy import PROGRAM
        result = PROGRAM.check()
        listing = result.annotated_listing(PROGRAM.program())
        lines = listing.splitlines()
        flagged = [l for l in lines if l.startswith("!!")]
        assert len(flagged) == 2
        assert any("7: ld [%o3],%g1" in l for l in flagged)
        assert any("null-pointer" in l for l in lines)

    def test_proved_instruction_marked(self):
        from repro.programs.sum_array import PROGRAM
        result = PROGRAM.check()
        listing = result.annotated_listing(PROGRAM.program())
        assert any(l.startswith("ok") and "ld [%o2+%g2]" in l
                   for l in listing.splitlines())
