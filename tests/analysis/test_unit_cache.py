"""The function-granular verdict cache is pure optimization: replayed
runs must be byte-identical to cache-free ones, edits must invalidate
exactly the functions they touch, and the unit digests must be stable
across processes (hash randomization included).

The multi-function program under test is the incremental benchmark
chain (``main -> fone -> ftwo -> fthree``) whose obligations all stay
local to their function, so every unit is self-contained and eligible
for storage.
"""

import json
import os
import sqlite3
import subprocess
import sys

import pytest

from repro.analysis.checker import check_assembly
from repro.analysis.options import CheckerOptions
from repro.analysis.report import result_to_json, verdict_projection
from repro.bench import (
    INCREMENTAL_EDITED_SOURCE, INCREMENTAL_SOURCE, INCREMENTAL_SPEC,
)

#: ``fthree`` indexes with a stride of 8 over the 64-word array: reads
#: up to offset 504 while the spec grants 252 — unsafe, in phase 5.
UNSAFE_SOURCE = "%s%s%s" % (
    *INCREMENTAL_SOURCE.rpartition("sll %g7,2,%g2")[0:1],
    "sll %g7,3,%g2",
    INCREMENTAL_SOURCE.rpartition("sll %g7,2,%g2")[2])


def _check(source, options):
    return check_assembly(source, INCREMENTAL_SPEC,
                          name="incremental", options=options)


def _fingerprint(result):
    return (result.safe,
            tuple((p.uid, p.index, p.proved) for p in result.proofs),
            tuple((v.index, v.category, v.description, v.phase)
                  for v in result.violations))


def _json_bytes(result):
    return json.dumps(verdict_projection(result_to_json(result)),
                      sort_keys=True)


def cache_at(tmp_path):
    return os.path.join(str(tmp_path), "units.sqlite")


class TestByteIdentity:
    def test_json_identical_across_cache_states(self, tmp_path):
        cache = cache_at(tmp_path)
        reference = _check(INCREMENTAL_SOURCE, CheckerOptions(jobs=1))
        cold = _check(INCREMENTAL_SOURCE,
                      CheckerOptions(jobs=1, cache_path=cache))
        warm = _check(INCREMENTAL_SOURCE,
                      CheckerOptions(jobs=1, cache_path=cache))
        disabled = _check(
            INCREMENTAL_SOURCE,
            CheckerOptions(jobs=1, cache_path=cache,
                           enable_unit_cache=False))
        assert warm.prover_stats["unit_hits"] > 0
        assert disabled.prover_stats.get("unit_hits", 0) == 0
        want = _json_bytes(reference)
        assert want == _json_bytes(cold) == _json_bytes(warm) \
            == _json_bytes(disabled)
        want = _fingerprint(reference)
        assert want == _fingerprint(cold) == _fingerprint(warm) \
            == _fingerprint(disabled)

    def test_unsafe_program_replays_identically(self, tmp_path):
        cache = cache_at(tmp_path)
        reference = _check(UNSAFE_SOURCE, CheckerOptions(jobs=1))
        assert not reference.safe
        cold = _check(UNSAFE_SOURCE,
                      CheckerOptions(jobs=1, cache_path=cache))
        warm = _check(UNSAFE_SOURCE,
                      CheckerOptions(jobs=1, cache_path=cache))
        assert warm.prover_stats["unit_hits"] > 0
        assert _fingerprint(reference) == _fingerprint(cold) \
            == _fingerprint(warm)
        assert _json_bytes(reference) == _json_bytes(warm)

    def test_warm_replay_at_jobs_2_matches(self, tmp_path):
        cache = cache_at(tmp_path)
        reference = _check(INCREMENTAL_SOURCE, CheckerOptions(jobs=1))
        _check(INCREMENTAL_SOURCE,
               CheckerOptions(jobs=1, cache_path=cache))
        warm = _check(INCREMENTAL_SOURCE,
                      CheckerOptions(jobs=2, cache_path=cache))
        assert warm.prover_stats["unit_hits"] > 0
        assert _fingerprint(reference) == _fingerprint(warm)


class TestInvalidation:
    def test_edit_one_function_reproves_only_it(self, tmp_path):
        cache = cache_at(tmp_path)
        base = _check(INCREMENTAL_SOURCE,
                      CheckerOptions(jobs=1, cache_path=cache))
        assert base.prover_stats["unit_stores"] >= 3
        reference = _check(INCREMENTAL_EDITED_SOURCE,
                           CheckerOptions(jobs=1))
        warm = _check(INCREMENTAL_EDITED_SOURCE,
                      CheckerOptions(jobs=1, cache_path=cache))
        stats = warm.prover_stats
        # The edit is inside fone; ftwo and fthree replay, fone (the
        # only miss) is re-proved and stored under its new digest.
        assert stats["unit_hits"] == 2
        assert stats["unit_misses"] >= 1
        assert stats["unit_replayed_obligations"] > 0
        assert stats["unit_stores"] >= 1
        assert _fingerprint(reference) == _fingerprint(warm)
        rewarm = _check(INCREMENTAL_EDITED_SOURCE,
                        CheckerOptions(jobs=1, cache_path=cache))
        assert rewarm.prover_stats["unit_hits"] \
            == rewarm.prover_stats["unit_lookups"]
        assert _fingerprint(reference) == _fingerprint(rewarm)

    def test_spec_change_invalidates_every_unit(self, tmp_path):
        cache = cache_at(tmp_path)
        primed = _check(INCREMENTAL_SOURCE,
                        CheckerOptions(jobs=1, cache_path=cache))
        assert primed.prover_stats["unit_stores"] >= 3
        changed_spec = INCREMENTAL_SPEC + \
            "loc pad : int = initialized perms ro region V summary\n"
        result = check_assembly(
            INCREMENTAL_SOURCE, changed_spec, name="incremental",
            options=CheckerOptions(jobs=1, cache_path=cache))
        stats = result.prover_stats
        assert stats["unit_lookups"] > 0
        assert stats["unit_hits"] == 0

    def test_verdict_affecting_option_invalidates_every_unit(
            self, tmp_path):
        cache = cache_at(tmp_path)
        _check(INCREMENTAL_SOURCE,
               CheckerOptions(jobs=1, cache_path=cache))
        result = _check(
            INCREMENTAL_SOURCE,
            CheckerOptions(jobs=1, cache_path=cache,
                           max_induction_iterations=4))
        stats = result.prover_stats
        assert stats["unit_lookups"] > 0
        assert stats["unit_hits"] == 0

    def test_performance_option_does_not_invalidate(self, tmp_path):
        cache = cache_at(tmp_path)
        _check(INCREMENTAL_SOURCE,
               CheckerOptions(jobs=1, cache_path=cache))
        result = _check(
            INCREMENTAL_SOURCE,
            CheckerOptions(jobs=1, cache_path=cache,
                           enable_matrix_kernel=False,
                           enable_slicing=False))
        stats = result.prover_stats
        assert stats["unit_hits"] == stats["unit_lookups"] > 0


_KEYS_SNIPPET = """
import sqlite3, sys
sys.path.insert(0, %r)
from repro.analysis.checker import check_assembly
from repro.analysis.options import CheckerOptions
from repro.bench import INCREMENTAL_SOURCE, INCREMENTAL_SPEC
check_assembly(INCREMENTAL_SOURCE, INCREMENTAL_SPEC,
               name="incremental",
               options=CheckerOptions(jobs=1, cache_path=%r))
conn = sqlite3.connect(%r)
for (key,) in conn.execute(
        "SELECT unit_key FROM units ORDER BY unit_key"):
    print(key)
"""


class TestDigestStability:
    def test_unit_keys_identical_across_hash_seeds(self, tmp_path):
        """The stored unit keys — spec digest, options digest, and
        function input digest combined — must not depend on Python's
        per-process hash randomization."""
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))), "src")
        keys = []
        for seed in ("1", "7"):
            cache = os.path.join(str(tmp_path),
                                 "seed%s.sqlite" % seed)
            env = dict(os.environ, PYTHONHASHSEED=seed)
            out = subprocess.run(
                [sys.executable, "-c",
                 _KEYS_SNIPPET % (src, cache, cache)],
                capture_output=True, text=True, env=env, check=True)
            keys.append(out.stdout.strip().splitlines())
        assert keys[0] == keys[1]
        assert len(keys[0]) >= 3
        assert all(len(key) == 64 for key in keys[0])

    def test_warm_hit_from_a_fresh_cache_handle(self, tmp_path):
        """A second checker process (simulated: fresh persistent
        handle, cleared in-process caches) replays what the first one
        stored — the cross-run contract of the cache."""
        cache = cache_at(tmp_path)
        _check(INCREMENTAL_SOURCE,
               CheckerOptions(jobs=1, cache_path=cache))
        conn = sqlite3.connect(cache)
        stored = conn.execute("SELECT COUNT(*) FROM units") \
            .fetchone()[0]
        conn.close()
        assert stored >= 3
        warm = _check(INCREMENTAL_SOURCE,
                      CheckerOptions(jobs=1, cache_path=cache))
        assert warm.prover_stats["unit_hits"] >= 3


class TestReplayTracing:
    def test_replay_emits_schema_valid_spans(self, tmp_path):
        from repro.trace.schema import load_trace, validate_records
        cache = cache_at(tmp_path)
        _check(INCREMENTAL_SOURCE,
               CheckerOptions(jobs=1, cache_path=cache))
        trace = os.path.join(str(tmp_path), "warm.jsonl")
        warm = _check(INCREMENTAL_SOURCE,
                      CheckerOptions(jobs=1, cache_path=cache,
                                     trace_path=trace))
        assert warm.prover_stats["unit_hits"] > 0
        records = load_trace(trace)
        validate_records(records)
        replayed = [r for r in records
                    if r.get("name") == "function:replayed"
                    and r.get("type") == "span"]
        assert replayed, "warm run recorded no function:replayed span"
        functions = {r["attrs"]["function"] for r in replayed}
        assert functions <= {"main", "fone", "ftwo", "fthree"}
        for record in replayed:
            attrs = record["attrs"]
            assert len(attrs["input_digest"]) == 64
            assert attrs["obligations"] >= 1
            assert attrs["proved"] <= attrs["obligations"]
        obligations = [r for r in records
                       if r.get("name") == "obligation"
                       and r.get("type") == "span"
                       and r["attrs"].get("replayed")]
        assert obligations, "replayed obligations carry no spans"
