"""The ``entry`` specification directive: checking an extension whose
exported entry point is not the first instruction (common for shipped
objects, which may place helpers first)."""

import pytest

from repro import check_assembly
from repro.errors import ReproError

# The helper comes first in the image; the exported entry is `extmain`.
SOURCE = """
double:
 1: retl
 2: add %o0,%o0,%o0
extmain:
 3: mov %o7,%g4
 4: ld [%o1],%o0
 5: call double
 6: nop
 7: mov %g4,%o7
 8: retl
 9: nop
"""

SPEC = """
type cell = struct { value: int }
loc c  : cell            perms r   region H
loc cp : cell ptr = {c}  perms rfo region H
rule [H : cell.value : ro]
invoke %o1 = cp
entry extmain
"""


class TestEntryDirective:
    def test_checks_from_the_named_entry(self):
        result = check_assembly(SOURCE, SPEC, name="entry-label")
        assert result.safe, result.summary()

    def test_default_entry_would_be_wrong(self):
        # Without the directive, checking starts at `double`, whose
        # %o0 is an uninitialized register at entry: flagged.
        spec = SPEC.replace("entry extmain\n", "")
        result = check_assembly(SOURCE, spec, name="entry-default")
        assert not result.safe
        assert any(v.category == "uninitialized-value"
                   for v in result.violations)

    def test_unknown_entry_label_raises(self):
        spec = SPEC.replace("entry extmain", "entry nowhere")
        with pytest.raises((ReproError, KeyError)):
            check_assembly(SOURCE, spec, name="entry-missing")

    def test_emulates_from_the_entry_too(self):
        from repro.sparc import Emulator, assemble
        program = assemble(SOURCE)
        emulator = Emulator(program)
        emulator.write_words(0xD0000, [21])
        emulator.set_register("%o1", 0xD0000)
        emulator.run(entry=program.label_index("extmain"))
        assert emulator.register_signed("%o0") == 42
