"""Unit tests for the wlp transfer functions and edge conditions."""

import pytest

from repro.analysis.wlp import (
    ICC, WlpTransfer, condition_formula, guarded_havoc, havoc,
    operand_term,
)
from repro.cfg.graph import BranchCondition, Node, NodeRole
from repro.logic import Prover, TRUE, conj, congruent, eq, ge, le, lt
from repro.logic.terms import Linear
from repro.sparc import assemble
from repro.typesys.access import access
from repro.typesys.locations import AbstractLocation, LocationTable
from repro.typesys.state import INIT, points_to
from repro.typesys.store import AbstractStore
from repro.typesys.types import INT32, PointerType
from repro.typesys.typestate import Typestate


def v(name, coeff=1):
    return Linear.var(name, coeff)


def make_node(text, uid=0):
    inst = assemble(text).lower().instruction(1)
    return Node(uid=uid, instruction=inst, role=NodeRole.NORMAL, index=1)


@pytest.fixture()
def plain_transfer():
    return WlpTransfer({}, LocationTable())


class TestRegisterAssignments:
    def test_mov_substitutes(self, plain_transfer):
        q = lt(v("%o2"), v("n"))
        out = plain_transfer.node_transfer(make_node("mov %o0,%o2"), q)
        assert out == lt(v("%o0"), v("n"))

    def test_clr_substitutes_zero(self, plain_transfer):
        q = ge(v("%g3"), 0)
        out = plain_transfer.node_transfer(make_node("clr %g3"), q)
        assert out == TRUE

    def test_add_sub(self, plain_transfer):
        q = lt(v("%g3"), v("n"))
        out = plain_transfer.node_transfer(make_node("inc %g3"), q)
        assert out == lt(v("%g3") + 1, v("n"))
        out = plain_transfer.node_transfer(make_node("dec %g3"), q)
        assert out == lt(v("%g3") - 1, v("n"))

    def test_sll_constant_scales(self, plain_transfer):
        q = lt(v("%g2"), v("n", 4))
        out = plain_transfer.node_transfer(
            make_node("sll %g3, 2,%g2"), q)
        assert out == lt(v("%g3", 4), v("n", 4))

    def test_self_referential_add(self, plain_transfer):
        # add %o0,%o0,%o0: Q[o0 -> o0 + o0].
        q = eq(v("%o0"), 8)
        out = plain_transfer.node_transfer(
            make_node("add %o0,%o0,%o0"), q)
        assert out == eq(v("%o0").scale(2), 8)

    def test_unknown_op_havocs(self, plain_transfer):
        q = ge(v("%o0"), 0)
        out = plain_transfer.node_transfer(
            make_node("xor %o1,%o2,%o0"), q)
        # Havoc: must not be provable anymore, and must not mention the
        # overwritten register's new value unconditionally.
        assert not Prover().is_valid(out)

    def test_untouched_formula_passes_through(self, plain_transfer):
        q = ge(v("%l0"), 0)
        assert plain_transfer.node_transfer(
            make_node("add %o1,%o2,%o3"), q) == q


class TestGuardedEncodings:
    def test_and_mask_exact(self, plain_transfer):
        # After and %o1,63,%g1 the result is in [0, 63]: the bound
        # g1 < 64 becomes valid.
        q = lt(v("%g1"), 64)
        out = plain_transfer.node_transfer(
            make_node("and %o1,63,%g1"), q)
        assert Prover().is_valid(out)

    def test_and_mask_congruence(self, plain_transfer):
        # The mask also fixes the residue: g1 ≡ o1 (mod 64).
        q = congruent(v("%g1") - v("%o1"), 64)
        out = plain_transfer.node_transfer(
            make_node("and %o1,63,%g1"), q)
        assert Prover().is_valid(out)

    def test_srl_constant_division(self, plain_transfer):
        # After srl %o1,1,%g1 (o1 >= 0): g1 <= o1.
        q = le(v("%g1"), v("%o1"))
        out = plain_transfer.node_transfer(
            make_node("srl %o1,1,%g1"), q)
        prover = Prover()
        assert prover.implies(ge(v("%o1"), 0), out)

    def test_register_shift_havocs(self, plain_transfer):
        q = lt(v("%g1"), 64)
        out = plain_transfer.node_transfer(
            make_node("sll %o1,%o2,%g1"), q)
        assert not Prover().is_valid(out)


class TestConditionCodes:
    def test_cmp_binds_icc(self, plain_transfer):
        q = lt(v(ICC), 0)
        out = plain_transfer.node_transfer(make_node("cmp %g3,%o1"), q)
        assert out == lt(v("%g3") - v("%o1"), 0)

    def test_tst_binds_icc_to_operand(self, plain_transfer):
        q = eq(v(ICC), 0)
        out = plain_transfer.node_transfer(make_node("tst %o3"), q)
        assert out == eq(v("%o3"), 0)

    def test_addcc_binds_sum(self, plain_transfer):
        q = ge(v(ICC), 0)
        out = plain_transfer.node_transfer(
            make_node("addcc %o0,%o1,%g0"), q)
        assert out == ge(v("%o0") + v("%o1"), 0)

    def test_subcc_with_destination_orders_substitutions(
            self, plain_transfer):
        # subcc %o0,%o1,%o0 writes both rd and icc from OLD values.
        q = conj(ge(v(ICC), 0), le(v("%o0"), 5))
        out = plain_transfer.node_transfer(
            make_node("subcc %o0,%o1,%o0"), q)
        expected = conj(ge(v("%o0") - v("%o1"), 0),
                        le(v("%o0") - v("%o1"), 5))
        assert Prover().equivalent(out, expected)

    def test_branch_condition_formulas(self):
        from repro.ir.ops import ConstOp, RegOp
        icc_lt = BranchCondition("<", RegOp(ICC), ConstOp(0), taken=True)
        assert condition_formula(icc_lt) == lt(v(ICC), 0)
        icc_ge = BranchCondition("<", RegOp(ICC), ConstOp(0), taken=False)
        assert Prover().equivalent(condition_formula(icc_ge),
                                   ge(v(ICC), 0))
        # Overflow branches (bvs/bvc) carry no linear relation.
        assert condition_formula(
            BranchCondition(None, taken=True)) is TRUE


class TestMemoryModel:
    def _table(self):
        table = LocationTable()
        table.add(AbstractLocation(name="t.tid", size=4, align=4))
        table.add(AbstractLocation(name="e", size=4, align=4,
                                   summary=True))
        return table

    def _stores(self, node_uid, pointer_target):
        ts = Typestate(
            PointerType(pointee=_TID_STRUCT), points_to(pointer_target),
            access("fo"))
        return {node_uid: AbstractStore({"%o3": ts})}

    def test_load_single_location_substitutes(self):
        table = self._table()
        node = make_node("ld [%o3],%g1", uid=7)
        transfer = WlpTransfer(self._stores(7, "t"), table)
        q = ge(v("%g1"), 0)
        out = transfer.node_transfer(node, q)
        assert out == ge(v("t.tid"), 0)

    def test_store_single_location_substitutes(self):
        table = self._table()
        node = make_node("st %g1,[%o3]", uid=7)
        transfer = WlpTransfer(self._stores(7, "t"), table)
        q = ge(v("t.tid"), 0)
        out = transfer.node_transfer(node, q)
        assert out == ge(v("%g1"), 0)

    def test_load_summary_havocs(self):
        table = self._table()
        ts = Typestate(
            __import__("repro.typesys.types",
                       fromlist=["ArrayBaseType"]).ArrayBaseType(
                element=INT32, size="n"),
            points_to("e"), access("fo"))
        node = make_node("ld [%o3+%g2],%g1", uid=7)
        transfer = WlpTransfer(
            {7: AbstractStore({"%o3": ts})}, table)
        q = ge(v("%g1"), 0)
        out = transfer.node_transfer(node, q)
        assert not Prover().is_valid(out)  # value unknown

    def test_store_summary_havocs_contents(self):
        table = self._table()
        ts = Typestate(
            __import__("repro.typesys.types",
                       fromlist=["ArrayBaseType"]).ArrayBaseType(
                element=INT32, size="n"),
            points_to("e"), access("fo"))
        node = make_node("st %g1,[%o3+%g2]", uid=7)
        transfer = WlpTransfer(
            {7: AbstractStore({"%o3": ts})}, table)
        q = ge(v("e"), 0)
        out = transfer.node_transfer(node, q)
        assert not Prover().is_valid(out)


from repro.typesys.types import Member, StructType  # noqa: E402

_TID_STRUCT = StructType(name="tid_only", members=(
    Member("tid", INT32, 0),))


class TestHavocHelpers:
    def test_havoc_removes_provability(self):
        q = ge(v("x"), 3)
        out = havoc(q, "x")
        assert not Prover().is_valid(out)

    def test_havoc_noop_when_absent(self):
        q = ge(v("y"), 3)
        assert havoc(q, "x") is q

    def test_guarded_havoc_keeps_guarded_fact(self):
        q = ge(v("x"), 0)
        out = guarded_havoc(q, "x",
                            lambda value: conj(ge(value, 0),
                                               le(value, 9)))
        assert Prover().is_valid(out)

    def test_operand_term_forms(self):
        from repro.sparc.isa import Imm, Reg
        assert operand_term(Reg(0)) == Linear.const(0)   # %g0
        assert operand_term(Reg(8)) == v("%o0")
        assert operand_term(Imm(-5)) == Linear.const(-5)
