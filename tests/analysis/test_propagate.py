"""Unit tests for Phase 2 (typestate propagation): fixpoint behavior,
meets at joins, interprocedural flow, trusted-call summaries."""

import pytest

from repro import parse_spec
from repro.analysis.prepare import prepare
from repro.analysis.propagate import propagate
from repro.cfg import CFG, NodeRole, build_cfg
from repro.sparc import assemble
from repro.typesys.state import INIT, PointsTo, UNINIT
from repro.typesys.types import ArrayBaseType, BOTTOM_TYPE


def run(source, spec_text):
    program = assemble(source)
    spec = parse_spec(spec_text)
    preparation = prepare(spec)
    cfg = build_cfg(program, trusted_labels=set(spec.functions))
    result = propagate(cfg, preparation, spec)
    return cfg, result


def store_before(cfg, result, index, role=NodeRole.NORMAL):
    uid = next(n.uid for n in cfg.nodes.values()
               if n.index == index and n.role is role)
    return result.inputs[uid]


ARRAY_SPEC = """
loc e   : int    = initialized  perms ro  region V summary
loc arr : int[n] = {e}          perms rfo region V
rule [V : int : ro]
rule [V : int[n] : rfo]
invoke %o0 = arr
invoke %o1 = n
assume n >= 1
"""


class TestJoins:
    def test_meet_across_paths_degrades_state(self):
        # %g1 initialized on one branch only: the join sees uninit.
        cfg, result = run("""
        1: cmp %o1,0
        2: ble 5
        3: nop
        4: mov 7,%g1
        5: retl
        6: nop
        """, ARRAY_SPEC)
        at_exit = store_before(cfg, result, 5)
        assert at_exit["%g1"].state != INIT

    def test_meet_of_pointer_and_int_is_bottom_type(self):
        cfg, result = run("""
        1: cmp %o1,0
        2: ble 5
        3: mov %o0,%g1     ! slot: pointer on both arms... then:
        4: mov 7,%g1       ! integer overwrites on the fall path
        5: retl
        6: nop
        """, ARRAY_SPEC)
        at_exit = store_before(cfg, result, 5)
        assert at_exit["%g1"].type == BOTTOM_TYPE

    def test_points_to_union_at_join(self):
        spec = """
        type node = struct { val: int; next: node ptr }
        loc a : node perms r region H
        loc b : node perms r region H
        loc pa : node ptr = {a} perms rfo region H
        loc pb : node ptr = {b} perms rfo region H
        rule [H : node.val : ro]
        rule [H : node.next : rfo]
        invoke %o0 = pa
        invoke %o1 = pb
        invoke %o2 = sel
        """
        cfg, result = run("""
        1: cmp %o2,0
        2: be 5
        3: nop
        4: mov %o1,%o0
        5: retl
        6: nop
        """, spec)
        state = store_before(cfg, result, 5)["%o0"].state
        assert isinstance(state, PointsTo)
        assert state.targets == frozenset({"a", "b"})


class TestLoopFixpoint:
    def test_loop_carried_typestate_stabilizes(self):
        cfg, result = run("""
        1: clr %g3
        2: cmp %g3,%o1
        3: bge 7
        4: nop
        5: ba 2
        6: inc %g3
        7: retl
        8: nop
        """, ARRAY_SPEC)
        header = store_before(cfg, result, 2)
        assert str(header["%g3"].type) == "int32"
        assert header["%g3"].operable

    def test_propagation_terminates_with_statistics(self):
        cfg, result = run("1: retl\n2: nop", ARRAY_SPEC)
        assert result.steps >= 2
        assert len(result.inputs) >= 2


class TestInterprocedural:
    SOURCE = """
    1: mov %o7,%g4
    2: call helper
    3: nop
    4: mov %g4,%o7
    5: retl
    6: nop
    helper:
    7: retl
    8: mov %o0,%o5
    """

    def test_callee_sees_caller_store(self):
        cfg, result = run(self.SOURCE, ARRAY_SPEC)
        inside = store_before(cfg, result, 7)
        assert isinstance(inside["%o0"].type, ArrayBaseType)

    def test_callee_effects_flow_back(self):
        cfg, result = run(self.SOURCE, ARRAY_SPEC)
        after = store_before(cfg, result, 4)
        assert isinstance(after["%o5"].type, ArrayBaseType)

    def test_callee_entry_is_meet_over_call_sites(self):
        cfg, result = run("""
        1: mov %o7,%g4
        2: call helper
        3: nop
        4: call helper
        5: mov 3,%o0       ! second site passes an integer
        6: mov %g4,%o7
        7: retl
        8: nop
        helper:
        9: retl
        10: nop
        """, ARRAY_SPEC)
        inside = store_before(cfg, result, 9)
        # Pointer from site 1 meets integer from site 2: bottom type.
        assert inside["%o0"].type == BOTTOM_TYPE


class TestTrustedCalls:
    SPEC = ARRAY_SPEC + """
    function getTime {
        returns %o0 : int = initialized perms o
        clobbers %g1 %g2
    }
    """

    def test_summary_applies_returns_and_clobbers(self):
        cfg, result = run("""
        1: mov 5,%g1
        2: mov %o7,%g4
        3: call getTime
        4: nop
        5: mov %g4,%o7
        6: retl
        7: nop
        """, self.SPEC)
        after = store_before(cfg, result, 5)
        assert after["%o0"].operable              # declared return
        assert after["%g1"].state == UNINIT       # clobbered
        assert isinstance(after["%g4"].type.__class__, type)  # survives

    def test_unspecified_external_call_clobbers_conservatively(self):
        cfg, result = run("""
        1: mov 5,%g1
        2: mov %o7,%g4
        3: call unknownfn
        4: nop
        5: mov %g4,%o7
        6: retl
        7: nop
        """, ARRAY_SPEC)
        after = store_before(cfg, result, 5)
        assert after["%g1"].state == UNINIT


class TestFigure6Rendering:
    def test_render_contains_stores(self):
        cfg, result = run("1: clr %o2\n2: retl\n3: nop", ARRAY_SPEC)
        text = result.render_figure6(cfg, ["%o0", "%o2"])
        assert "1: clr %o2" in text
        assert "%o0: <int32[n], {e}, fo>" in text
