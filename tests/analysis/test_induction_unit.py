"""Unit-level tests of the induction-iteration machinery: candidate
generation, generalization, ranking, and the outcome bookkeeping."""

import pytest

from repro import parse_spec
from repro.analysis.annotate import annotate
from repro.analysis.induction import InductionIteration
from repro.logic.formula import formula_size
from repro.analysis.options import CheckerOptions
from repro.analysis.prepare import prepare
from repro.analysis.propagate import propagate
from repro.analysis.verify import VerificationEngine
from repro.cfg import CFG, build_cfg, find_loops
from repro.logic import conj, disj, ge, implies, le, lt
from repro.logic.terms import Linear
from repro.sparc import assemble

SUM_SOURCE = """
1: mov %o0,%o2
2: clr %o0
3: cmp %o0,%o1
4: bge 12
5: clr %g3
6: sll %g3, 2,%g2
7: ld [%o2+%g2],%g2
8: inc %g3
9: cmp %g3,%o1
10:bl 6
11:add %o0,%g2,%o0
12:retl
13:nop
"""

SUM_SPEC = """
loc e   : int    = initialized  perms ro  region V summary
loc arr : int[n] = {e}          perms rfo region V
rule [V : int : ro]
rule [V : int[n] : rfo]
invoke %o0 = arr
invoke %o1 = n
assume n >= 1
"""


def v(name, coeff=1):
    return Linear.var(name, coeff)


@pytest.fixture()
def sum_engine():
    program = assemble(SUM_SOURCE)
    spec = parse_spec(SUM_SPEC)
    preparation = prepare(spec)
    cfg = build_cfg(program)
    propagation = propagate(cfg, preparation, spec)
    options = CheckerOptions()
    options.enable_forward_bounds = False  # exercise the full machinery
    engine = VerificationEngine(cfg, propagation, preparation, spec,
                                options)
    loop = find_loops(cfg, CFG.MAIN).loops[0]
    return engine, loop


class TestGeneralization:
    def test_paper_generalization_produced(self, sum_engine):
        engine, loop = sum_engine
        ii = InductionIteration(engine, loop, {}, 0)
        # W(1) of the paper: %g3+1 < %o1  ->  %g3+1 < n.
        w1 = implies(lt(v("%g3") + 1, v("%o1")),
                     lt(v("%g3") + 1, v("n")))
        candidates = ii.generalizations(w1)
        target = le(v("%o1"), v("n"))
        assert any(engine.prover.equivalent(c, target)
                   for c in candidates), \
            "expected %%o1<=n among %s" % [str(c) for c in candidates]

    def test_generalization_eliminates_only_modified_vars(self,
                                                          sum_engine):
        engine, loop = sum_engine
        modified = engine.modified_variables(loop)
        assert "%g3" in modified          # loop counter
        assert "%g2" in modified          # scaled index / loaded value
        assert "%o0" in modified          # accumulator
        assert "%o1" not in modified      # size register: invariant
        assert "%o2" not in modified      # array base: invariant

    def test_generalization_of_atom_free_formula_empty(self, sum_engine):
        engine, loop = sum_engine
        ii = InductionIteration(engine, loop, {}, 0)
        from repro.logic import TRUE
        assert ii.generalizations(TRUE) == []


class TestCandidates:
    def test_candidates_imply_the_wlp(self, sum_engine):
        engine, loop = sum_engine
        ii = InductionIteration(engine, loop, {}, 0)
        body_wlp = implies(lt(v("%g3") + 1, v("%o1")),
                           lt(v("%g3") + 1, v("n")))
        for candidate in ii._candidates_for(body_wlp):
            assert engine.prover.implies(candidate, body_wlp), \
                "candidate %s does not imply the wlp" % candidate

    def test_candidate_ordering_prefers_small(self, sum_engine):
        engine, loop = sum_engine
        ii = InductionIteration(engine, loop, {}, 0)
        small = ge(v("%o1"), 0)
        big = conj(ge(v("%o1"), 0), ge(v("n"), 0), ge(v("%o2"), 0))
        assert ii._rank(small) < ii._rank(big)

    def test_atom_count(self):
        f = conj(ge(v("a"), 0), disj(ge(v("b"), 0), ge(v("c"), 0)))
        assert formula_size(f) == 3


class TestRun:
    def test_successful_run_reports_invariant(self, sum_engine):
        engine, loop = sum_engine
        ii = InductionIteration(engine, loop, {}, 0)
        outcome = ii.run(lt(v("%g3"), v("n")))
        assert outcome.success
        assert outcome.invariant is not None
        assert engine.prover.implies(outcome.invariant,
                                     lt(v("%g3"), v("n")))

    def test_unprovable_target_fails_within_budget(self, sum_engine):
        engine, loop = sum_engine
        ii = InductionIteration(engine, loop, {}, 0)
        from repro.logic import eq
        outcome = ii.run(eq(v("%g3"), v("n")))
        assert not outcome.success
        assert outcome.candidates_tried \
            <= engine.options.max_invariant_candidates

    def test_trivial_target_short_circuits(self, sum_engine):
        engine, loop = sum_engine
        ii = InductionIteration(engine, loop, {}, 0)
        outcome = ii.run(ge(v("%g3"), v("%g3")))
        assert outcome.success and outcome.candidates_tried == 0


class TestOptionsRespected:
    def test_max_iterations_bounds_chain_length(self, sum_engine):
        engine, loop = sum_engine
        engine.options.max_induction_iterations = 1
        ii = InductionIteration(engine, loop, {}, 0)
        outcome = ii.run(lt(v("%g3"), v("n")))
        # With chains capped at W(0) the bound is unprovable.
        assert not outcome.success

    def test_disabling_generalization_breaks_sum(self, sum_engine):
        engine, loop = sum_engine
        engine.options.enable_generalization = False
        ii = InductionIteration(engine, loop, {}, 0)
        outcome = ii.run(lt(v("%g3"), v("n")))
        assert not outcome.success
