"""Security automata over trusted-call events (paper Section 1's
extension: "typestates can be related to security automata … this makes
extending our technique to perform security checking natural")."""

import pytest

from repro import check_assembly
from repro.errors import SpecError
from repro.policy.parser import parse_spec

BASE_SPEC = """
abstract jnienv size 4
loc env    : jnienv ptr = {envobj} perms rfo region J
loc envobj : jnienv                perms r   region J
rule [J : jnienv : ro]
invoke %o0 = env
invoke %o1 = k

function MonitorEnter {
    param %o0 : jnienv ptr = {envobj} perms fo
    clobbers %g1
}
function MonitorExit {
    param %o0 : jnienv ptr = {envobj} perms fo
    clobbers %g1
}
function Access {
    param %o0 : jnienv ptr = {envobj} perms fo
    returns %o0 : int = initialized perms o
    clobbers %g1
}
function Log {
    clobbers %g1
}

automaton locking {
    start unlocked
    final unlocked
    unlocked -> locked : MonitorEnter
    locked -> unlocked : MonitorExit
    locked -> locked : Access
    any : Log
}
"""


def check(source, name):
    return check_assembly(source, BASE_SPEC, name=name)


class TestLockDiscipline:
    GOOD = """
    1: mov %o7,%g4
    2: mov %o0,%g5
    3: call MonitorEnter
    4: nop
    5: mov %g5,%o0
    6: call Access
    7: nop
    8: mov %g5,%o0
    9: call MonitorExit
    10: nop
    11: mov %g4,%o7
    12: retl
    13: nop
    """

    def test_disciplined_sequence_passes(self):
        result = check(self.GOOD, "locking-good")
        assert result.safe, result.summary()

    def test_access_without_lock_flagged(self):
        source = self.GOOD.replace("3: call MonitorEnter",
                                   "3: call Log")
        result = check(source, "locking-unlocked-access")
        assert not result.safe
        assert any(v.category == "security-automaton" and v.index == 6
                   for v in result.violations)

    def test_missing_unlock_flagged_at_return(self):
        source = self.GOOD.replace("9: call MonitorExit", "9: call Log")
        result = check(source, "locking-leak")
        assert not result.safe
        assert any(v.category == "security-automaton"
                   and "return to the host" in v.description
                   for v in result.violations)

    def test_double_lock_flagged(self):
        source = self.GOOD.replace("6: call Access",
                                   "6: call MonitorEnter")
        result = check(source, "locking-double")
        assert not result.safe
        assert any(v.category == "security-automaton" and v.index == 6
                   for v in result.violations)

    def test_unrestricted_event_never_flags(self):
        source = self.GOOD.replace("6: call Access", "6: call Log")
        result = check(source, "locking-logged")
        assert result.safe, result.summary()


class TestBranchyFlows:
    def test_lock_on_one_path_only_is_flagged(self):
        # The access happens with the automaton possibly unlocked.
        source = """
        1: mov %o7,%g4
        2: mov %o0,%g5
        3: cmp %o1,0
        4: ble 8
        5: nop
        6: call MonitorEnter
        7: nop
        8: mov %g5,%o0
        9: call Access
        10: nop
        11: mov %g5,%o0
        12: call MonitorExit
        13: nop
        14: mov %g4,%o7
        15: retl
        16: nop
        """
        result = check(source, "locking-one-path")
        assert not result.safe
        flagged = {v.index for v in result.violations
                   if v.category == "security-automaton"}
        assert 9 in flagged

    def test_balanced_branches_pass(self):
        source = """
        1: mov %o7,%g4
        2: mov %o0,%g5
        3: call MonitorEnter
        4: nop
        5: cmp %o1,0
        6: ble 11
        7: nop
        8: mov %g5,%o0
        9: call Access
        10: nop
        11: mov %g5,%o0
        12: call MonitorExit
        13: nop
        14: mov %g4,%o7
        15: retl
        16: nop
        """
        result = check(source, "locking-balanced")
        assert result.safe, result.summary()

    def test_loop_carried_state(self):
        # Lock once, access in a loop, unlock once: fine.
        source = """
        1: mov %o7,%g4
        2: mov %o0,%g5
        3: call MonitorEnter
        4: nop
        5: clr %l0
        6: cmp %l0,%o1
        7: bge 14
        8: nop
        9: mov %g5,%o0
        10: call Access
        11: nop
        12: ba 6
        13: inc %l0
        14: mov %g5,%o0
        15: call MonitorExit
        16: nop
        17: mov %g4,%o7
        18: retl
        19: nop
        """
        result = check(source, "locking-loop")
        assert result.safe, result.summary()

    def test_lock_inside_loop_flagged_as_double_lock(self):
        source = """
        1: mov %o7,%g4
        2: mov %o0,%g5
        3: clr %l0
        4: cmp %l0,%o1
        5: bge 12
        6: nop
        7: mov %g5,%o0
        8: call MonitorEnter
        9: nop
        10: ba 4
        11: inc %l0
        12: mov %g5,%o0
        13: call MonitorExit
        14: nop
        15: mov %g4,%o7
        16: retl
        17: nop
        """
        result = check(source, "locking-reentry")
        assert not result.safe
        assert any(v.index == 8 for v in result.violations
                   if v.category == "security-automaton")


class TestSpecParsing:
    def test_automaton_parsed(self):
        spec = parse_spec(BASE_SPEC)
        automaton = spec.automata["locking"]
        assert automaton.start == "unlocked"
        assert automaton.finals == {"unlocked"}
        assert automaton.step("unlocked", "MonitorEnter") == "locked"
        assert automaton.step("locked", "MonitorEnter") is None
        assert automaton.step("locked", "Log") == "locked"

    def test_missing_start_rejected(self):
        with pytest.raises(SpecError):
            parse_spec("""
            automaton broken {
                a -> b : f
            }
            """)

    def test_unterminated_block_rejected(self):
        with pytest.raises(SpecError):
            parse_spec("automaton x {\nstart s")

    def test_unknown_line_rejected(self):
        with pytest.raises(SpecError):
            parse_spec("automaton x {\nstart s\nwibble\n}")
