"""Unit tests for Phase 1 (preparation): policy application, struct
field materialization, invocation binding, pointer facts."""

import pytest

from repro import parse_spec
from repro.analysis.prepare import prepare
from repro.typesys.state import INIT, PointsTo, UNINIT
from repro.typesys.types import PointerType, StructType


def prep(text):
    return prepare(parse_spec(text))


class TestPolicyApplication:
    def test_rule_grants_permissions(self):
        p = prep("""
        loc e : int = initialized perms rwo region V summary
        rule [V : int : rwo]
        """)
        location = p.locations["e"]
        assert location.readable and location.writable
        assert p.initial_store["e"].operable

    def test_no_matching_rule_keeps_declaration(self):
        p = prep("loc e : int = initialized perms ro region V")
        assert p.locations["e"].readable
        assert not p.locations["e"].writable

    def test_declaration_intersects_with_rule(self):
        # Declaration says read-only; the rule would grant write; the
        # intersection withholds it.
        p = prep("""
        loc e : int = initialized perms ro region V
        rule [V : int : rwo]
        """)
        assert not p.locations["e"].writable

    def test_rule_in_other_region_does_not_apply(self):
        p = prep("""
        loc e : int = initialized perms ro region V
        rule [H : int : rwo]
        """)
        assert not p.locations["e"].writable


class TestStructMaterialization:
    SPEC = """
    type thread = struct { tid: int; lwpid: int; next: thread ptr }
    loc th : thread perms r region H summary
    rule [H : thread.tid, thread.lwpid : ro]
    rule [H : thread.next : rfo]
    """

    def test_child_locations_created(self):
        p = prep(self.SPEC)
        for name in ("th.tid", "th.lwpid", "th.next"):
            assert name in p.locations

    def test_field_permissions_from_categories(self):
        p = prep(self.SPEC)
        assert p.locations["th.tid"].readable
        assert not p.locations["th.tid"].writable
        next_ts = p.initial_store["th.next"]
        assert next_ts.followable

    def test_recursive_pointer_points_to_summary_and_null(self):
        p = prep(self.SPEC)
        state = p.initial_store["th.next"].state
        assert isinstance(state, PointsTo)
        assert state.targets == frozenset({"th", "null"})
        assert isinstance(p.initial_store["th.next"].type, PointerType)

    def test_field_alignment_derived_from_offset(self):
        p = prep(self.SPEC)
        assert p.locations["th.tid"].align == 4
        assert p.locations["th.lwpid"].align == 4

    def test_summary_flag_inherited(self):
        p = prep(self.SPEC)
        assert p.locations["th.tid"].summary


class TestInvocation:
    def test_symbol_binding_constrains_register(self):
        p = prep("invoke %o1 = n\nassume n >= 1")
        assert str(p.initial_store["%o1"].type) == "int32"
        assert "-%o1+n = 0" in str(p.initial_constraints)

    def test_pointer_binding_adds_address_facts(self):
        p = prep("""
        loc e   : int    = initialized perms ro region V summary
        loc arr : int[n] = {e} perms rfo region V
        invoke %o0 = arr
        """)
        text = str(p.initial_constraints)
        assert "%o0-1 >= 0" in text          # non-null
        assert "%o0 ≡ 0 (mod 4)" in text     # aligned

    def test_maybe_null_pointer_gets_no_nonnull_fact(self):
        p = prep("""
        type page = struct { refbit: int; next: page ptr }
        loc pg : page perms r region H summary
        loc head : page ptr = {pg, null} perms rfo region H
        invoke %o0 = head
        """)
        assert "%o0-1 >= 0" not in str(p.initial_constraints)

    def test_struct_binding_makes_pointer(self):
        p = prep("""
        type timer = struct { counter: int; start: int }
        loc tm : timer perms rw region T
        invoke %o0 = tm
        """)
        ts = p.initial_store["%o0"]
        assert isinstance(ts.type, PointerType)
        assert isinstance(ts.type.pointee, StructType)
        assert ts.state == PointsTo(frozenset({"tm"}))

    def test_unbound_registers_bottom_but_g0_o7_special(self):
        p = prep("")
        assert str(p.initial_store["%l3"]) == "<⊥t, ⊥s, ∅>"
        assert p.initial_store["%g0"].operable
        assert str(p.initial_store["%o7"].type) == "retaddr"
