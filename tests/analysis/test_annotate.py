"""Unit tests for Phase 3 (annotation): predicate attachment per
instruction class (paper Table 2 / Figure 3)."""

import pytest

from repro import parse_spec
from repro.analysis.annotate import (
    CAT_ALIGN, CAT_BOUNDS, CAT_CALL, CAT_NULL, CAT_PERM, CAT_STACK,
    CAT_UNINIT, annotate,
)
from repro.analysis.prepare import prepare
from repro.analysis.propagate import propagate
from repro.analysis.semantics import Usage
from repro.cfg import build_cfg
from repro.sparc import assemble


def annotations_for(source, spec_text):
    program = assemble(source)
    spec = parse_spec(spec_text)
    preparation = prepare(spec)
    cfg = build_cfg(program, trusted_labels=set(spec.functions))
    propagation = propagate(cfg, preparation, spec)
    return annotate(cfg, propagation.inputs, spec, preparation.locations)


def at_index(annotations, index):
    return next(a for a in annotations.values() if a.index == index)


ARRAY_SPEC = """
loc e   : int    = initialized  perms rwo region V summary
loc arr : int[n] = {e}          perms rfo  region V
rule [V : int : rwo]
rule [V : int[n] : rfo]
invoke %o0 = arr
invoke %o1 = n
assume n >= 1
"""

THREAD_SPEC = """
type thread = struct { tid: int; lwpid: int; next: thread ptr }
loc th   : thread            perms r   region H summary
loc head : thread ptr = {th} perms rfo region H
rule [H : thread.tid : ro]
rule [H : thread.next : rfo]
invoke %o0 = head
"""


class TestArrayAccess:
    def test_bounds_null_align_attached(self):
        anns = annotations_for(
            "1: ld [%o0+%g2],%g1\n2: retl\n3: nop",
            ARRAY_SPEC + "invoke %g2 = idx\n")
        ann = at_index(anns, 1)
        categories = [g.category for g in ann.global_]
        assert categories.count(CAT_BOUNDS) == 2     # lower + upper
        assert CAT_NULL in categories
        assert CAT_ALIGN in categories

    def test_byte_access_has_no_alignment_conditions(self):
        spec = ARRAY_SPEC.replace("int[n]", "uint8[n]").replace(
            ": int ", ": uint8 ")
        anns = annotations_for(
            "1: ldub [%o0+%g2],%g1\n2: retl\n3: nop",
            spec + "invoke %g2 = idx\n")
        ann = at_index(anns, 1)
        assert all(g.category != CAT_ALIGN for g in ann.global_)

    def test_constant_index_still_checked(self):
        anns = annotations_for("1: ld [%o0+8],%g1\n2: retl\n3: nop",
                               ARRAY_SPEC)
        ann = at_index(anns, 1)
        assert any(g.category == CAT_BOUNDS for g in ann.global_)

    def test_store_checks_writability(self):
        anns = annotations_for("1: st %o1,[%o0]\n2: retl\n3: nop",
                               ARRAY_SPEC)
        ann = at_index(anns, 1)
        writable = [p for p in ann.local if "writable" in p.description]
        assert writable and all(p.holds for p in writable)

    def test_readonly_array_write_flagged(self):
        readonly = ARRAY_SPEC.replace("perms rwo", "perms ro").replace(
            ": rwo]", ": ro]")
        anns = annotations_for("1: st %o1,[%o0]\n2: retl\n3: nop",
                               readonly)
        ann = at_index(anns, 1)
        writable = [p for p in ann.local if "writable" in p.description]
        assert writable and not any(p.holds for p in writable)


class TestFieldAccess:
    def test_resolved_field_read(self):
        anns = annotations_for("1: ld [%o0],%g1\n2: retl\n3: nop",
                               THREAD_SPEC)
        ann = at_index(anns, 1)
        assert ann.usage is Usage.FIELD_ACCESS
        assert any("th.tid" in p.description and p.holds
                   for p in ann.local)

    def test_unpermitted_field_read_flagged(self):
        # lwpid has no policy rule in THREAD_SPEC: unreadable.
        anns = annotations_for("1: ld [%o0+4],%g1\n2: retl\n3: nop",
                               THREAD_SPEC)
        ann = at_index(anns, 1)
        readable = [p for p in ann.local
                    if "readable(th.lwpid)" in p.description]
        assert readable and not readable[0].holds

    def test_unfollowable_pointer_flagged(self):
        spec = THREAD_SPEC.replace(
            "loc head : thread ptr = {th} perms rfo region H",
            "loc head : thread ptr = {th} perms ro region H")
        anns = annotations_for("1: ld [%o0],%g1\n2: retl\n3: nop", spec)
        ann = at_index(anns, 1)
        follow = [p for p in ann.local
                  if "followable" in p.description]
        assert follow and not follow[0].holds

    def test_bogus_offset_empty_f(self):
        anns = annotations_for("1: ld [%o0+2],%g1\n2: retl\n3: nop",
                               THREAD_SPEC)
        ann = at_index(anns, 1)
        f_check = [p for p in ann.local if "F != {}" in p.description]
        assert f_check and not f_check[0].holds


class TestScalarOperations:
    def test_uninitialized_operand_flagged(self):
        anns = annotations_for("1: add %g5,%o1,%g1\n2: retl\n3: nop",
                               ARRAY_SPEC)
        ann = at_index(anns, 1)
        operable = [p for p in ann.local
                    if "operable(%g5)" in p.description]
        assert operable and not operable[0].holds

    def test_constant_operands_always_operable(self):
        anns = annotations_for("1: mov 5,%g1\n2: retl\n3: nop",
                               ARRAY_SPEC)
        ann = at_index(anns, 1)
        assert all(p.holds for p in ann.local)


class TestStackDiscipline:
    def test_aligned_sp_adjustment_accepted(self):
        anns = annotations_for("1: sub %sp,96,%sp\n2: retl\n3: nop",
                               ARRAY_SPEC)
        ann = at_index(anns, 1)
        stack = [p for p in ann.local if p.category == CAT_STACK]
        assert stack and stack[0].holds

    def test_misaligned_sp_adjustment_flagged(self):
        anns = annotations_for("1: sub %sp,100,%sp\n2: retl\n3: nop",
                               ARRAY_SPEC)
        ann = at_index(anns, 1)
        stack = [p for p in ann.local if p.category == CAT_STACK]
        assert stack and not stack[0].holds

    def test_arbitrary_sp_overwrite_flagged(self):
        anns = annotations_for("1: mov %o1,%sp\n2: retl\n3: nop",
                               ARRAY_SPEC)
        ann = at_index(anns, 1)
        stack = [p for p in ann.local if p.category == CAT_STACK]
        assert stack and not stack[0].holds

    def test_return_through_valid_address_ok(self):
        anns = annotations_for("1: retl\n2: nop", ARRAY_SPEC)
        ann = at_index(anns, 1)
        ret = [p for p in ann.local if "return address" in p.description]
        assert ret and ret[0].holds

    def test_return_through_corrupted_address_flagged(self):
        anns = annotations_for(
            "1: mov %o1,%o7\n2: retl\n3: nop", ARRAY_SPEC)
        ann = at_index(anns, 2)
        ret = [p for p in ann.local if "return address" in p.description]
        assert ret and not ret[0].holds


class TestTrustedCalls:
    SPEC = ARRAY_SPEC + """
    function log {
        param %o0 : int = initialized perms o
        requires %o0 >= 0
        clobbers %g1
    }
    """

    def test_argument_check_uses_post_slot_state(self):
        anns = annotations_for("""
        1: mov %o7,%g4
        2: call log
        3: mov %o1,%o0
        4: mov %g4,%o7
        5: retl
        6: nop
        """, self.SPEC)
        ann = at_index(anns, 2)
        arg = [p for p in ann.local if p.category == CAT_CALL]
        assert arg and all(p.holds for p in arg)

    def test_precondition_pulled_across_slot(self):
        anns = annotations_for("""
        1: mov %o7,%g4
        2: call log
        3: mov %o1,%o0
        4: mov %g4,%o7
        5: retl
        6: nop
        """, self.SPEC)
        ann = at_index(anns, 2)
        pre = [g for g in ann.global_ if g.category == CAT_CALL]
        assert pre
        # The formula is over %o1 (the slot moves %o1 into %o0).
        assert "%o1" in pre[0].formula.free_variables()

    def test_unspecified_callee_flagged(self):
        anns = annotations_for("""
        1: mov %o7,%g4
        2: call mystery
        3: nop
        4: mov %g4,%o7
        5: retl
        6: nop
        """, ARRAY_SPEC)
        ann = at_index(anns, 2)
        spec_check = [p for p in ann.local
                      if "host specification" in p.description]
        assert spec_check and not spec_check[0].holds
