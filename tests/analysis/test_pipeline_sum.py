"""End-to-end pipeline tests on the paper's running example (Figures
1, 2, 3, 6 and the Section 5.2.2 derivation)."""

import pytest

from repro import SafetyChecker, check_assembly, parse_spec
from repro.analysis.annotate import annotate
from repro.analysis.prepare import prepare
from repro.analysis.propagate import propagate
from repro.analysis.semantics import Usage
from repro.cfg import build_cfg
from repro.programs.sum_array import PROGRAM, SOURCE, SPEC
from repro.sparc import assemble, encode_program
from repro.typesys.state import PointsTo
from repro.typesys.types import ArrayBaseType


@pytest.fixture(scope="module")
def pipeline():
    program = assemble(SOURCE, name="sum")
    spec = parse_spec(SPEC)
    preparation = prepare(spec)
    cfg = build_cfg(program)
    propagation = propagate(cfg, preparation, spec)
    annotations = annotate(cfg, propagation.inputs, spec,
                           preparation.locations)
    return program, spec, preparation, cfg, propagation, annotations


@pytest.fixture(scope="module")
def result():
    return PROGRAM.check()


class TestPhase1Figure2:
    def test_initial_typestates(self, pipeline):
        __, __, preparation, __, __, __ = pipeline
        store = preparation.initial_store
        o0 = store["%o0"]
        assert isinstance(o0.type, ArrayBaseType)
        assert o0.state == PointsTo(frozenset({"e"}))
        assert str(store["%o1"].type) == "int32"
        assert str(store["e"]) == "<int32, initialized, o>"

    def test_unbound_registers_start_bottom(self, pipeline):
        __, __, preparation, __, __, __ = pipeline
        assert str(preparation.initial_store["%g3"]) == "<⊥t, ⊥s, ∅>"

    def test_initial_constraints(self, pipeline):
        __, __, preparation, __, __, __ = pipeline
        text = str(preparation.initial_constraints)
        assert "n-1 >= 0" in text          # n >= 1
        assert "-%o1+n = 0" in text        # n = %o1
        assert "%o0-1 >= 0" in text        # arr != null
        assert "mod 4" in text             # arr alignment

    def test_figure2_rendering(self, pipeline):
        __, __, preparation, __, __, __ = pipeline
        text = preparation.render_figure2()
        assert "Initial Typestate" in text
        assert "Initial Constraints" in text


class TestPhase2Figure6:
    def test_line7_resolves_as_array_access(self, pipeline):
        __, __, __, cfg, propagation, annotations = pipeline
        node7 = next(a for a in annotations.values() if a.index == 7)
        assert node7.usage is Usage.ARRAY_ACCESS

    def test_line7_store_matches_figure6(self, pipeline):
        __, __, __, cfg, propagation, __ = pipeline
        uid = next(n.uid for n in cfg.nodes.values() if n.index == 7)
        store = propagation.inputs[uid]
        assert isinstance(store["%o2"].type, ArrayBaseType)
        assert str(store["%g3"].type) == "int32"
        assert store["%g3"].operable

    def test_line6_overload_resolution_scalar(self, pipeline):
        __, __, __, __, __, annotations = pipeline
        node6 = next(a for a in annotations.values() if a.index == 6)
        assert node6.usage is Usage.SCALAR_OP

    def test_line11_is_scalar_add_not_pointer(self, pipeline):
        # add %o0,%g2,%o0 at 11: both operands integers by then.
        __, __, __, __, __, annotations = pipeline
        for ann in annotations.values():
            if ann.index == 11:
                assert ann.usage is Usage.SCALAR_OP

    def test_figure6_rendering(self, pipeline):
        __, __, __, cfg, propagation, __ = pipeline
        text = propagation.render_figure6(cfg, ["%o2", "%g2", "%g3"])
        assert "7: ld [%o2+%g2],%g2" in text


class TestPhase3Figure3:
    def test_line7_annotation_shape(self, pipeline):
        __, __, __, __, __, annotations = pipeline
        ann = next(a for a in annotations.values() if a.index == 7)
        rendered = ann.render_figure3()
        assert "Local Safety Preconditions" in rendered
        assert "Global Safety Preconditions" in rendered
        descriptions = [p.description for p in ann.local]
        assert any("followable(%o2)" in d for d in descriptions)
        assert any("readable(e)" in d for d in descriptions)
        categories = {g.category for g in ann.global_}
        assert categories == {"null-pointer", "array-bounds",
                              "address-alignment"}

    def test_sum_global_condition_count_matches_paper_scale(self, result):
        # Paper Figure 9 reports 4 global conditions for Sum; ours
        # separates the index-alignment congruence, giving 5.
        assert result.characteristics.global_conditions in (4, 5)


class TestPhase5:
    def test_sum_is_certified_safe(self, result):
        assert result.safe
        assert result.violations == []
        assert all(p.proved for p in result.proofs)

    def test_upper_bound_needed_induction(self, result):
        assert result.induction_runs >= 1

    def test_characteristics_match_paper(self, result):
        c = result.characteristics
        assert c.instructions == 13
        assert c.loops == 1 and c.inner_loops == 0
        assert c.calls == 0

    def test_checker_accepts_machine_code(self):
        # The front door: raw machine words, not assembly.
        program = assemble(SOURCE, name="sum")
        blob = encode_program(program)
        spec = parse_spec(SPEC)
        result = SafetyChecker(blob, spec, name="sum-binary").check()
        assert result.safe


class TestVariantsAreRejected:
    def test_off_by_one_loop_bound(self):
        buggy = SOURCE.replace("bl 6", "ble 6")
        result = check_assembly(buggy, SPEC, name="sum-oob")
        assert not result.safe
        assert any(v.category == "array-bounds" and v.index == 7
                   for v in result.violations)

    def test_missing_size_constraint(self):
        # Without n >= 1 nothing guarantees the empty-array branch...
        # the loop still guards n > 0, so this stays safe — but dropping
        # the n = %o1 binding breaks the bound proof.
        weakened = SPEC.replace("invoke %o1 = n", "invoke %o1 = m")
        result = check_assembly(SOURCE, weakened, name="sum-unbound")
        assert not result.safe

    def test_unaligned_element_stride(self):
        # sll by 1 instead of 2: indexes are only 2-aligned.
        buggy = SOURCE.replace("sll %g3, 2,%g2", "sll %g3, 1,%g2")
        result = check_assembly(buggy, SPEC, name="sum-align")
        assert not result.safe
        assert any(v.category == "address-alignment"
                   for v in result.violations)

    def test_write_to_readonly_array(self):
        buggy = SOURCE.replace("ld [%o2+%g2],%g2", "st %g3,[%o2+%g2]")
        result = check_assembly(buggy, SPEC, name="sum-write")
        assert not result.safe
        assert any(v.category == "access-permission"
                   for v in result.violations)

    def test_use_of_uninitialized_register(self):
        buggy = SOURCE.replace("6: sll %g3, 2,%g2", "6: sll %g4, 2,%g2")
        result = check_assembly(buggy, SPEC, name="sum-uninit")
        assert not result.safe
        assert any(v.category == "uninitialized-value"
                   for v in result.violations)

    def test_corrupted_return_address(self):
        buggy = SOURCE.replace("12:retl", "12:mov %o0,%o7\nretl")
        result = check_assembly(buggy, SPEC, name="sum-ret")
        assert not result.safe
        assert any(v.category == "stack-manipulation"
                   for v in result.violations)
