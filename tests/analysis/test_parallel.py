"""The parallel proof engine: obligation generation and scheduling,
pool discharge, the determinism guarantee (``--jobs N`` verdicts are
identical to serial for every N), and the serial fallback when no pool
can be created.
"""

import pytest

from repro.analysis import obligations as ob
from repro.analysis.options import CheckerOptions
from repro.logic.parallel import ParallelProver, PoolUnavailable
from repro.logic.prover import Prover
from repro.programs import all_programs


def program_named(name):
    return next(p for p in all_programs() if p.name == name)


def verdicts(result):
    return (result.safe,
            [(p.uid, p.index, p.proved) for p in result.proofs],
            [(v.index, v.category, v.description, v.phase)
             for v in result.violations])


class TestObligationGeneration:
    def engine_and_annotations(self, name="hash"):
        from repro.analysis.annotate import annotate
        benchmark = program_named(name)
        machine = benchmark.program().lower()
        spec = benchmark.spec()
        engine = ob.build_engine(machine, spec, CheckerOptions())
        annotations = annotate(engine.cfg, engine.propagation.inputs,
                               spec, engine.preparation.locations)
        return engine, annotations

    def test_deterministic_order_and_digests(self):
        __, annotations = self.engine_and_annotations()
        first = ob.generate_obligations(annotations)
        second = ob.generate_obligations(annotations)
        assert [o.oid for o in first] == list(range(len(first)))
        assert [(o.uid, o.digest) for o in first] \
            == [(o.uid, o.digest) for o in second]
        assert all(len(o.digest) == 64 for o in first)

    def test_groups_partition_the_obligations(self):
        engine, annotations = self.engine_and_annotations()
        obs = ob.generate_obligations(annotations)
        groups = ob.obligation_groups(engine, obs)
        flattened = sorted(o.oid for g in groups for o in g)
        assert flattened == [o.oid for o in obs]
        # Groups are keyed by (function, containing loop header):
        # every member of a group maps to the same key.
        for group in groups:
            keys = set()
            for o in group:
                node = engine.cfg.node(o.uid)
                loop = engine.loops[node.function].containing(o.uid)
                keys.add((node.function,
                          loop.header if loop else -1))
            assert len(keys) == 1


@pytest.mark.parametrize("name", ["sum", "hash", "btree", "jpvm"])
class TestSerialParallelParity:
    """``--jobs 2`` must produce byte-identical verdicts, proof
    records, and violations — including on unsafe programs (jpvm)."""

    def test_jobs2_matches_serial(self, name):
        program = program_named(name)
        serial = program.check(options=CheckerOptions(jobs=1))
        parallel = program.check(options=CheckerOptions(jobs=2))
        assert verdicts(parallel) == verdicts(serial)

    def test_parallel_counters_surface(self, name):
        program = program_named(name)
        result = program.check(options=CheckerOptions(jobs=2))
        stats = result.prover_stats
        assert stats.get("pool_jobs") == 2
        # Either the pool ran (and dispatched every obligation) or the
        # program had too few independent groups to bother.
        if stats.get("pool_tasks_dispatched"):
            assert stats["pool_obligations_dispatched"] \
                == result.characteristics.global_conditions
            assert stats["pool_serialization_seconds"] >= 0


class TestSerialFallback:
    def test_pool_failure_falls_back_to_serial(self, monkeypatch):
        """When no pool can be created, the checker silently degrades
        to the serial engine and records the fallback."""
        def broken_discharge(self, tasks, items=0):
            raise PoolUnavailable("simulated: no processes")
        monkeypatch.setattr(ParallelProver, "discharge",
                            broken_discharge)
        program = program_named("hash")
        serial = program.check(options=CheckerOptions(jobs=1))
        degraded = program.check(options=CheckerOptions(jobs=2))
        assert verdicts(degraded) == verdicts(serial)
        assert degraded.prover_stats.get("pool_fallback") == 1

    def test_unpicklable_payload_raises_pool_unavailable(self):
        with pytest.raises(PoolUnavailable):
            ParallelProver(jobs=2, payload=lambda: None,
                           initializer=ob.worker_initialize,
                           worker=ob.worker_discharge)

    def test_single_group_skips_the_pool(self):
        program = program_named("sum")
        result = program.check(options=CheckerOptions(jobs=4))
        assert verdicts(result) \
            == verdicts(program.check(options=CheckerOptions(jobs=1)))
        assert result.prover_stats.get("pool_tasks_dispatched") == 0


class TestEnvDefaults:
    def test_repro_jobs_env_sets_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert CheckerOptions().jobs == 3
        monkeypatch.setenv("REPRO_JOBS", "not-a-number")
        assert CheckerOptions().jobs == 1

    def test_repro_cache_env_sets_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "/tmp/somewhere.sqlite")
        assert CheckerOptions().cache_path == "/tmp/somewhere.sqlite"
        monkeypatch.delenv("REPRO_CACHE")
        assert CheckerOptions().cache_path is None

    def test_jobs_zero_means_all_cores(self):
        import os
        assert ob.resolve_jobs(CheckerOptions(jobs=0)) \
            == (os.cpu_count() or 1)
        assert ob.resolve_jobs(CheckerOptions(jobs=5)) == 5


class TestStatsSplit:
    def test_reset_stats_keeps_caches(self):
        from repro.logic.formula import conj, ge
        from repro.logic.terms import Linear
        prover = Prover()
        f = conj(ge(Linear.var("x"), 0), ge(Linear.var("y"), 2))
        prover.is_satisfiable(f)
        prover.reset_stats()
        assert prover.stats.satisfiability_queries == 0
        prover.is_satisfiable(f)  # still answered from the raw cache
        assert prover.stats.cache_hits == 1

    def test_clear_caches_keeps_stats(self):
        from repro.logic.formula import ge
        from repro.logic.terms import Linear
        prover = Prover()
        prover.is_satisfiable(ge(Linear.var("x"), 0))
        queries = prover.stats.satisfiability_queries
        prover.clear_caches()
        assert prover.stats.satisfiability_queries == queries
        prover.is_satisfiable(ge(Linear.var("x"), 0))
        assert prover.stats.cache_hits == 0  # cache really was dropped
