"""Unit tests for the forward fact-propagation pass (the Section 6
extension)."""

import pytest

from repro import parse_spec
from repro.analysis.forward import FactSet, ForwardBounds
from repro.analysis.prepare import prepare
from repro.cfg import CFG, NodeRole, build_cfg, find_loops
from repro.logic import Prover, congruent, conj, eq, ge, implies, le
from repro.logic.formula import Cong, Geq
from repro.logic.terms import Linear
from repro.sparc import assemble


def v(name, coeff=1):
    return Linear.var(name, coeff)


def facts_for(source, spec_text):
    program = assemble(source)
    spec = parse_spec(spec_text)
    preparation = prepare(spec)
    cfg = build_cfg(program, trusted_labels=set(spec.functions))
    return cfg, ForwardBounds(cfg, preparation.initial_constraints)


def facts_at_index(cfg, forward, index):
    uid = next(n.uid for n in cfg.nodes.values()
               if n.index == index and n.role is NodeRole.NORMAL)
    return forward.facts_at(uid)


SPEC = """
loc e   : int    = initialized  perms ro  region V summary
loc arr : int[n] = {e}          perms rfo region V
rule [V : int : ro]
rule [V : int[n] : rfo]
invoke %o0 = arr
invoke %o1 = n
assume n >= 1
"""


class TestFactSet:
    def test_geq_keeps_strongest(self):
        facts = FactSet()
        facts.add_atom(Geq(v("x") - 2))      # x >= 2
        facts.add_atom(Geq(v("x") - 5))      # x >= 5: stronger
        assert Prover().implies(facts.to_formula(), ge(v("x"), 5))

    def test_join_keeps_weaker(self):
        a, b = FactSet(), FactSet()
        a.add_atom(Geq(v("x") - 5))
        b.add_atom(Geq(v("x") - 2))
        joined = a.join(b)
        prover = Prover()
        assert prover.implies(joined.to_formula(), ge(v("x"), 2))
        assert not prover.implies(joined.to_formula(), ge(v("x"), 5))

    def test_join_drops_one_sided_facts(self):
        a, b = FactSet(), FactSet()
        a.add_atom(Geq(v("x")))
        joined = a.join(b)
        assert joined.to_formula() == conj()

    def test_widening_drops_unstable_bounds(self):
        a, b = FactSet(), FactSet()
        a.add_atom(Geq(v("x")))              # x >= 0 on both
        a.add_atom(Geq(-v("x") + 3))         # x <= 3 vs x <= 4: unstable
        b.add_atom(Geq(v("x")))
        b.add_atom(Geq(-v("x") + 4))
        widened = a.join(b, widen=True)
        prover = Prover()
        assert prover.implies(widened.to_formula(), ge(v("x"), 0))
        assert not prover.implies(widened.to_formula(), le(v("x"), 9))

    def test_congruence_weakened_to_gcd(self):
        a, b = FactSet(), FactSet()
        a.add_atom(Cong(v("x"), 8))          # x ≡ 0 (mod 8)
        b.add_atom(Cong(v("x") - 4, 8))      # x ≡ 4 (mod 8)
        joined = a.join(b)
        prover = Prover()
        assert prover.implies(joined.to_formula(),
                              congruent(v("x"), 4))

    def test_assign_shift_is_exact(self):
        facts = FactSet()
        facts.add_atom(Geq(v("x")))          # x >= 0
        shifted = facts.assign("x", v("x") + 1)
        assert Prover().implies(shifted.to_formula(), ge(v("x"), 1))

    def test_assign_unknown_kills(self):
        facts = FactSet()
        facts.add_atom(Geq(v("x")))
        killed = facts.assign("x", None)
        assert killed.to_formula() == conj()

    def test_assign_copy_creates_equality(self):
        facts = FactSet()
        copied = facts.assign("y", v("x"))
        assert Prover().implies(copied.to_formula(), eq(v("y"), v("x")))


class TestForwardPass:
    def test_initial_constraints_reach_straightline_code(self):
        cfg, forward = facts_for("1: mov %o0,%o2\n2: retl\n3: nop", SPEC)
        facts = facts_at_index(cfg, forward, 2)
        prover = Prover()
        assert prover.implies(facts, ge(v("%o0"), 1))
        assert prover.implies(facts, congruent(v("%o0"), 4))
        assert prover.implies(facts, eq(v("%o2"), v("%o0")))

    def test_branch_condition_recorded(self):
        cfg, forward = facts_for("""
        1: cmp %o1,3
        2: ble 5
        3: nop
        4: retl
        5: nop
        6: retl
        7: nop
        """, SPEC)
        taken = facts_at_index(cfg, forward, 6)
        assert Prover().implies(taken, le(v("%o1"), 3))
        fall = facts_at_index(cfg, forward, 4)
        assert Prover().implies(fall, ge(v("%o1"), 4))

    def test_loop_header_keeps_stable_facts(self):
        cfg, forward = facts_for("""
        1: clr %g3
        2: cmp %g3,%o1
        3: bge 7
        4: nop
        5: ba 2
        6: inc %g3
        7: retl
        8: nop
        """, SPEC)
        forest = find_loops(cfg, CFG.MAIN)
        header = forest.loops[0].header
        facts = forward.facts_at(header)
        prover = Prover()
        # The pointer facts survive the loop; they never change.
        assert prover.implies(facts, ge(v("%o0"), 1))
        assert prover.implies(facts, congruent(v("%o0"), 4))
        # The counter's stable lower bound survives widening.
        assert prover.implies(facts, ge(v("%g3"), 0))

    def test_congruence_loop_invariant_found(self):
        cfg, forward = facts_for("""
        1: clr %g3
        2: cmp %g3,64
        3: bge 7
        4: nop
        5: ba 2
        6: add %g3,4,%g3
        7: retl
        8: nop
        """, SPEC)
        forest = find_loops(cfg, CFG.MAIN)
        facts = forward.facts_at(forest.loops[0].header)
        assert Prover().implies(facts, congruent(v("%g3"), 4))

    def test_call_kills_register_facts(self):
        cfg, forward = facts_for("""
        1: mov 5,%g1
        2: mov %o7,%g4
        3: call unknown
        4: nop
        5: retl
        6: nop
        """, SPEC)
        after = facts_at_index(cfg, forward, 5)
        assert not Prover().implies(after, eq(v("%g1"), 5))

    def test_mask_bounds_recorded(self):
        cfg, forward = facts_for("""
        1: and %o1,63,%g1
        2: retl
        3: nop
        """, SPEC)
        facts = facts_at_index(cfg, forward, 2)
        prover = Prover()
        assert prover.implies(facts, ge(v("%g1"), 0))
        assert prover.implies(facts, le(v("%g1"), 63))


class TestEngineIntegration:
    def test_forward_facts_discharge_without_induction(self):
        # With the pass on, the loop-invariant pointer conditions are
        # discharged without any induction-iteration run.
        from repro.analysis.options import CheckerOptions
        from repro.programs.bubble_sort import PROGRAM
        on = PROGRAM.check()
        options = CheckerOptions()
        options.enable_forward_bounds = False
        off = PROGRAM.check(options)
        assert on.safe and off.safe
        assert on.induction_runs < off.induction_runs
