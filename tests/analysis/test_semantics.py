"""Unit tests for the abstract operational semantics (paper Table 1)
and overload resolution."""

import pytest

from repro.analysis.semantics import (
    CONSTANT_TYPESTATE, MemoryResolution, RETADDR_TYPESTATE, Usage,
    classify_alu, resolve_memory, transfer, trusted_call_transfer,
)
from repro.errors import AnalysisError
from repro.sparc import assemble
from repro.typesys.access import access
from repro.typesys.locations import AbstractLocation, LocationTable
from repro.typesys.state import INIT, PointsTo, UNINIT, points_to
from repro.typesys.store import AbstractStore
from repro.typesys.types import (
    ArrayBaseType, ArrayMidType, INT32, Member, PointerType, StructType,
)
from repro.typesys.typestate import BOTTOM_TYPESTATE, Typestate


def inst(text):
    """Assemble one SPARC instruction and lower it to its IR op."""
    return assemble(text).lower().instruction(1)


@pytest.fixture()
def table():
    locations = LocationTable()
    locations.add(AbstractLocation(name="e", size=4, align=4,
                                   readable=True, writable=True,
                                   summary=True))
    locations.add(AbstractLocation(name="t", size=12, align=4))
    locations.add(AbstractLocation(name="t.tid", size=4, align=4))
    locations.add(AbstractLocation(name="t.next", size=4, align=4))
    return locations


THREAD = StructType(name="thread", members=(
    Member("tid", INT32, 0),
    Member("next", PointerType(pointee=INT32), 4),
))

INT_TS = Typestate(INT32, INIT, access("o"))
ARRAY_TS = Typestate(ArrayBaseType(element=INT32, size="n"),
                     points_to("e"), access("fo"))
STRUCT_PTR_TS = Typestate(PointerType(pointee=THREAD), points_to("t"),
                          access("fo"))


class TestClassifyAlu:
    def test_mov_is_move(self):
        store = AbstractStore({"%o0": ARRAY_TS})
        assert classify_alu(inst("mov %o0,%o2"), store) is Usage.MOVE

    def test_scalar_add(self):
        store = AbstractStore({"%o0": INT_TS, "%g2": INT_TS})
        assert classify_alu(inst("add %o0,%g2,%o0"),
                            store) is Usage.SCALAR_OP

    def test_array_index_calculation(self):
        store = AbstractStore({"%o0": ARRAY_TS, "%g2": INT_TS})
        assert classify_alu(inst("add %o0,%g2,%o3"),
                            store) is Usage.ARRAY_INDEX_CALC

    def test_array_index_calculation_commuted(self):
        store = AbstractStore({"%o0": ARRAY_TS, "%g2": INT_TS})
        assert classify_alu(inst("add %g2,%o0,%o3"),
                            store) is Usage.ARRAY_INDEX_CALC

    def test_cmp_is_compare(self):
        store = AbstractStore({"%o0": INT_TS, "%o1": INT_TS})
        assert classify_alu(inst("cmp %o0,%o1"), store) is Usage.COMPARE

    def test_single_usage_is_per_occurrence(self):
        # The same textual instruction resolves differently under
        # different stores — the flow-sensitivity the paper stresses.
        scalar_store = AbstractStore({"%o0": INT_TS, "%g2": INT_TS})
        array_store = AbstractStore({"%o0": ARRAY_TS, "%g2": INT_TS})
        add = inst("add %o0,%g2,%o0")
        assert classify_alu(add, scalar_store) is Usage.SCALAR_OP
        assert classify_alu(add, array_store) is Usage.ARRAY_INDEX_CALC


class TestTransferRules:
    def test_move_copies_typestate(self, table):
        store = AbstractStore({"%o0": ARRAY_TS})
        out = transfer(inst("mov %o0,%o2"), store, table)
        assert out["%o2"] == ARRAY_TS
        assert out["%o0"] == ARRAY_TS  # source unchanged

    def test_scalar_add_meets_operands(self, table):
        uninit = Typestate(INT32, UNINIT, access("o"))
        store = AbstractStore({"%o0": INT_TS, "%g2": uninit})
        out = transfer(inst("add %o0,%g2,%o3"), store, table)
        assert out["%o3"].state == UNINIT  # meet goes down

    def test_index_calc_gives_mid_pointer(self, table):
        store = AbstractStore({"%o0": ARRAY_TS, "%g2": INT_TS})
        out = transfer(inst("add %o0,%g2,%o3"), store, table)
        assert isinstance(out["%o3"].type, ArrayMidType)
        assert out["%o3"].state == ARRAY_TS.state

    def test_writes_to_g0_discarded(self, table):
        store = AbstractStore({"%o0": INT_TS})
        out = transfer(inst("add %o0,1,%g0"), store, table)
        assert out == store

    def test_load_from_array_summary(self, table):
        element = Typestate(INT32, INIT, access("o"))
        store = AbstractStore({"%o2": ARRAY_TS, "%g2": INT_TS,
                               "e": element})
        out = transfer(inst("ld [%o2+%g2],%g2"), store, table)
        assert out["%g2"] == element

    def test_load_field_through_struct_pointer(self, table):
        field = Typestate(INT32, INIT, access("o"))
        store = AbstractStore({"%o3": STRUCT_PTR_TS, "t.tid": field})
        out = transfer(inst("ld [%o3],%g1"), store, table)
        assert out["%g1"] == field

    def test_store_strong_update_non_summary(self, table):
        old = Typestate(INT32, UNINIT, access("o"))
        store = AbstractStore({"%o3": STRUCT_PTR_TS, "%g1": INT_TS,
                               "t.tid": old})
        out = transfer(inst("st %g1,[%o3]"), store, table)
        assert out["t.tid"] == INT_TS  # strong: replaced outright

    def test_store_weak_update_summary(self, table):
        writable_array = Typestate(
            ArrayBaseType(element=INT32, size="n"), points_to("e"),
            access("fo"))
        old = Typestate(INT32, UNINIT, access("o"))
        store = AbstractStore({"%o0": writable_array, "%g2": INT_TS,
                               "%g1": INT_TS, "e": old})
        out = transfer(inst("st %g1,[%o0+%g2]"), store, table)
        # Summary location: meet of old and new -> still may-uninit.
        assert out["e"].state == UNINIT

    def test_call_writes_return_address(self, table):
        store = AbstractStore({})
        out = transfer(inst("call 1"), store, table)
        assert out["%o7"] == RETADDR_TYPESTATE

    def test_save_rejected(self, table):
        with pytest.raises(AnalysisError):
            transfer(inst("save %sp,-96,%sp"), AbstractStore({}), table)


class TestResolveMemory:
    def test_array_access(self, table):
        store = AbstractStore({"%o2": ARRAY_TS})
        res = resolve_memory(inst("ld [%o2+%g2],%g2"), store, table)
        assert res.usage is Usage.ARRAY_ACCESS
        assert res.targets == ["e"]
        assert res.index == "%g2"

    def test_field_access_by_offset(self, table):
        store = AbstractStore({"%o3": STRUCT_PTR_TS})
        res = resolve_memory(inst("ld [%o3+4],%g1"), store, table)
        assert res.usage is Usage.FIELD_ACCESS
        assert res.targets == ["t.next"]

    def test_bad_offset_gives_empty_f(self, table):
        store = AbstractStore({"%o3": STRUCT_PTR_TS})
        res = resolve_memory(inst("ld [%o3+2],%g1"), store, table)
        assert res.usage is Usage.FIELD_ACCESS
        assert res.targets == []

    def test_non_pointer_base_unresolved(self, table):
        store = AbstractStore({"%o3": INT_TS})
        res = resolve_memory(inst("ld [%o3],%g1"), store, table)
        assert res.usage is Usage.UNKNOWN
        assert res.problem

    def test_register_indexed_struct_unresolved(self, table):
        store = AbstractStore({"%o3": STRUCT_PTR_TS, "%g2": INT_TS})
        res = resolve_memory(inst("ld [%o3+%g2],%g1"), store, table)
        assert res.usage is Usage.UNKNOWN

    def test_null_excluded_from_targets(self, table):
        maybe_null = Typestate(PointerType(pointee=THREAD),
                               points_to("t", "null"), access("fo"))
        store = AbstractStore({"%o3": maybe_null})
        res = resolve_memory(inst("ld [%o3],%g1"), store, table)
        assert res.targets == ["t.tid"]


class TestTrustedCallTransfer:
    def test_returns_and_clobbers(self):
        store = AbstractStore({"%o0": INT_TS, "%o5": ARRAY_TS})
        out = trusted_call_transfer(
            store, returns={"%o0": CONSTANT_TYPESTATE},
            clobbers=("%g1",))
        assert out["%o0"] == CONSTANT_TYPESTATE
        assert out["%g1"].state == UNINIT
        assert out["%o5"] == ARRAY_TS  # untouched survives
