"""The paper's documented limitations (Section 8), reproduced as
executable facts.

These tests assert that the checker *fails* in exactly the ways the
paper says its prototype fails — reproducing the negative results is
as much a part of fidelity as reproducing the positive ones.
"""

import pytest

from repro import check_assembly
from repro.errors import AnalysisError, CFGError, RecursionRejected
from repro.analysis.checker import SafetyChecker
from repro.policy.parser import parse_spec
from repro.sparc import assemble

ARRAY_SPEC = """
loc e   : int    = initialized  perms rwo region V summary
loc arr : int[n] = {e}          perms rfo  region V
rule [V : int : rwo]
rule [V : int[n] : rfo]
invoke %o0 = arr
invoke %o1 = n
assume n >= 1
"""


class TestSentinelSearch:
    """Paper Section 8: "The induction-iteration method cannot prove
    the correctness of array accesses in a loop if correctness depends
    on some data whose values are set before the execution of the loop.
    One such example is the use of a sentinel at the end of the array
    to speed up a sequential search."
    """

    SOURCE = """
    ! Store a sentinel equal to the key at arr[n-1], then scan without a
    ! bounds test: termination relies on the *contents* of the array.
    ! %o0 = arr, %o1 = n, %o2 = key
     1: sll %o1,2,%g1
     2: sub %g1,4,%g1
     3: st %o2,[%o0+%g1]   ! arr[n-1] = key (the sentinel)
     4: clr %g3
     5: sll %g3,2,%g2
     6: ld [%o0+%g2],%g1   ! arr[i] -- actually in bounds, but only
     7: cmp %g1,%o2        !            because of the sentinel value
     8: bne 5
     9: inc %g3
    10: retl
    11: mov %g3,%o0
    """

    def test_sentinel_bound_is_a_false_alarm(self):
        result = check_assembly(self.SOURCE, ARRAY_SPEC,
                                name="sentinel-search")
        # The scan never leaves the array at run time (the sentinel
        # guarantees a hit), but that argument needs value reasoning the
        # typestate + linear-constraint framework cannot express.
        assert not result.safe
        assert any(v.category == "array-bounds" and v.index == 6
                   for v in result.violations)

    def test_sentinel_program_runs_fine_concretely(self):
        from repro.sparc import Emulator
        program = assemble(self.SOURCE)
        emulator = Emulator(program)
        base = 0xC0000
        emulator.write_words(base, [5, 9, 2, 7, 0])
        emulator.set_register("%o0", base)
        emulator.set_register("%o1", 5)
        emulator.set_register("%o2", 2)
        emulator.run()
        # Found at index 2; the delay-slot increment runs once more on
        # the exiting iteration, so the returned counter is 3.
        assert emulator.register_signed("%o0") == 3


class TestRecursionRejected:
    """Section 5.2.1: "our present system detects and rejects recursive
    programs"."""

    def test_direct_recursion(self):
        source = """
        1: mov %o7,%g4
        2: call f
        3: nop
        4: mov %g4,%o7
        5: retl
        6: nop
        f:
        7: call f
        8: nop
        9: retl
        10: nop
        """
        with pytest.raises(RecursionRejected):
            SafetyChecker(assemble(source),
                          parse_spec(ARRAY_SPEC)).check()


class TestLocalArraysNeedAnnotation:
    """Section 6: "if the untrusted code uses local arrays, we may not
    be able to infer their bounds … we have to annotate the stackframes
    for the functions that use local arrays"."""

    UNANNOTATED = """
    ! Writes through %sp without any frame annotation.
    1: st %g0,[%sp+64]
    2: retl
    3: nop
    """

    def test_unannotated_frame_access_rejected(self):
        result = check_assembly(self.UNANNOTATED, ARRAY_SPEC,
                                name="frame-unannotated")
        assert not result.safe

    def test_annotated_frame_access_accepted(self):
        spec = ARRAY_SPEC + """
        loc fb    : int = initialized perms rwo region F summary
        loc frame : int[32] = {fb} perms rfo region F
        rule [F : int : rwo]
        rule [F : int[32] : rfo]
        invoke %o6 = frame
        """
        source = """
        1: st %g0,[%sp+64]
        2: retl
        3: nop
        """
        result = check_assembly(source, spec, name="frame-annotated")
        assert result.safe, result.summary()


class TestSingleSummaryLocation:
    """Section 8: "the analysis loses precision when handling array
    references, because we use a single abstract location to summarize
    all elements of the array" — a store to one element weakens what is
    known about every element."""

    SOURCE = """
    1: ld [%o0],%g1       ! g1 = arr[0] (initialized)
    2: st %g1,[%o0+4]     ! arr[1] = g1: weak update on the summary
    3: retl
    4: nop
    """

    def test_weak_update_keeps_summary_sound(self):
        # With an *uninitialized* array, storing one element does not
        # make loads of other elements acceptable.
        spec = """
        loc e   : int    = uninitialized perms rwo region V summary
        loc arr : int[n] = {e}           perms rfo  region V
        rule [V : int : rwo]
        rule [V : int[n] : rfo]
        invoke %o0 = arr
        invoke %o1 = n
        assume n >= 2
        """
        source = """
        1: st %o1,[%o0]      ! arr[0] = n
        2: ld [%o0+4],%g1    ! arr[1] is still possibly uninitialized
        3: add %g1,1,%g1     ! ... so this use is flagged
        4: retl
        5: nop
        """
        result = check_assembly(source, spec, name="weak-update")
        assert not result.safe
        assert any(v.category == "uninitialized-value"
                   for v in result.violations)


class TestUnconventionalOperations:
    """Section 8: "our analysis is not able to deal with certain
    unconventional usages of operations, such as swapping two
    non-integer values by means of exclusive or operations"."""

    XOR_SWAP = """
    ! xor-swap the array pointer with a scalar and back.
    1: xor %o0,%o1,%o0
    2: xor %o0,%o1,%o1
    3: xor %o0,%o1,%o0    ! %o1 now holds the original pointer
    4: ld [%o1],%g1       ! ... but the typestate cannot see that
    5: retl
    6: nop
    """

    def test_xor_swap_loses_pointer_typestate(self):
        result = check_assembly(self.XOR_SWAP, ARRAY_SPEC,
                                name="xor-swap")
        assert not result.safe
        assert any(v.category == "unresolved-access"
                   for v in result.violations)
