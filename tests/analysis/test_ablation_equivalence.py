"""The Omega-overhaul features (matrix kernel, obligation slicing,
incremental sessions) are pure optimizations: every ablation must
return exactly the same verdict, proof outcomes, and violations on the
benchmark corpus.

The fast programs run in tier-1; the heavyweight rows carry the
``bench`` marker, mirroring ``test_cache_equivalence.py``.  The
``benchmarks/parity_check.py --ablations`` gate covers the same
configurations from the CLI side.
"""

import pytest

from repro.analysis.options import CheckerOptions
from repro.programs import all_programs, fast_programs

ABLATIONS = {
    "no-matrix": dict(enable_matrix_kernel=False),
    "no-slicing": dict(enable_slicing=False),
    "no-incremental": dict(enable_incremental=False),
    "all-off": dict(enable_matrix_kernel=False, enable_slicing=False,
                    enable_incremental=False),
}

_FAST = {p.name for p in fast_programs()}


def _verdict(result):
    return (
        result.safe,
        tuple(sorted((v.index, v.category, v.phase)
                     for v in result.violations)),
        tuple(sorted((p.index, p.proved) for p in result.proofs)),
    )


def _check_ablations(program):
    reference = _verdict(program.check(options=CheckerOptions()))
    for name, overrides in ABLATIONS.items():
        result = program.check(options=CheckerOptions(**overrides))
        assert _verdict(result) == reference, \
            "%s changed the verdict on %s" % (name, program.name)


@pytest.mark.parametrize(
    "program", fast_programs(), ids=lambda p: p.name)
def test_fast_programs_ablation_equivalent(program):
    _check_ablations(program)


@pytest.mark.bench
@pytest.mark.parametrize(
    "program",
    [p for p in all_programs() if p.name not in _FAST],
    ids=lambda p: p.name)
def test_heavy_programs_ablation_equivalent(program):
    _check_ablations(program)
