"""Regression tests for the monotonic-clock deadline plumbing.

The historical bug: deadlines were stored as ``time.time()`` epoch
seconds and compared against the wall clock, so an NTP step (or a
suspend/resume) could expire a running check instantly — or extend it
indefinitely.  Deadlines are now ``time.monotonic()`` values
everywhere in-process; epoch time appears only in
``CheckerOptions.deadline_epoch``, the one field that crosses the
pool-worker pickle boundary, and is translated back exactly once per
process.
"""

import time

import pytest

from repro.analysis.obligations import build_engine
from repro.analysis.options import CheckerOptions
from repro.cfg.loops import Loop
from repro.errors import ProverTimeout
from repro.analysis.induction import InductionIteration
from repro.logic.formula import TRUE, ge
from repro.logic.prover import Prover
from repro.programs.sum_array import PROGRAM as SUM_PROGRAM
from repro.service.metrics import ServiceMetrics


class TestProverDeadline:
    def test_wall_clock_step_does_not_expire_budget(self, monkeypatch):
        """An NTP step (time.time jumps forward an hour) must not
        expire a monotonic deadline that still has budget left."""
        prover = Prover()
        prover.deadline = time.monotonic() + 60.0
        real_time = time.time
        monkeypatch.setattr(time, "time",
                            lambda: real_time() + 3600.0)
        prover.check_deadline()  # must not raise
        assert prover.is_satisfiable(ge("x", 0)) is True

    def test_wall_clock_step_backward_does_not_extend_budget(
            self, monkeypatch):
        prover = Prover()
        prover.deadline = time.monotonic() - 0.001
        real_time = time.time
        monkeypatch.setattr(time, "time",
                            lambda: real_time() - 3600.0)
        with pytest.raises(ProverTimeout):
            prover.check_deadline()

    def test_expired_deadline_raises(self):
        prover = Prover()
        prover.deadline = time.monotonic() - 1.0
        with pytest.raises(ProverTimeout):
            prover.is_satisfiable(ge("x", 0))

    def test_no_deadline_never_raises(self):
        prover = Prover()
        assert prover.deadline is None
        prover.check_deadline()


class TestEpochTranslation:
    def test_build_engine_translates_epoch_to_monotonic(self):
        """``deadline_epoch`` is the only epoch deadline; each process
        turns it into its own monotonic clock on entry."""
        spec = SUM_PROGRAM.spec()
        options = CheckerOptions(deadline_epoch=time.time() + 30.0)
        engine = build_engine(SUM_PROGRAM.program().lower(), spec,
                              options)
        assert engine.prover.deadline is not None
        remaining = engine.prover.deadline - time.monotonic()
        assert 25.0 < remaining < 30.5

    def test_build_engine_without_epoch_leaves_no_deadline(self):
        spec = SUM_PROGRAM.spec()
        engine = build_engine(SUM_PROGRAM.program().lower(), spec,
                              CheckerOptions())
        assert engine.prover.deadline is None

    def test_checker_timeout_is_immune_to_wall_clock(self, monkeypatch):
        """End-to-end: a generous timeout_s survives a wall-clock jump
        taken mid-check (patched before the run so every time.time()
        call the checker might make sees the stepped clock)."""
        real_time = time.time
        monkeypatch.setattr(time, "time",
                            lambda: real_time() + 7200.0)
        result = SUM_PROGRAM.check(CheckerOptions(timeout_s=120.0))
        assert result.safe
        assert not result.timed_out


class _StallingProver(Prover):
    """A prover whose validity queries never consult the deadline —
    simulating long stretches of candidate generation between real
    queries.  Only the search loop's explicit check_deadline() calls
    can interrupt a run."""

    def __init__(self):
        # Incremental sessions off: fallback-mode sessions route every
        # query through the overridden is_satisfiable below, keeping
        # the "query that never consults the deadline" simulation.
        super().__init__(enable_incremental=False)
        self.queries = 0

    def is_valid(self, f):
        self.queries += 1
        return False

    def is_satisfiable(self, f):
        self.queries += 1
        return True


class _StubEngine:
    """The slice of VerificationEngine that InductionIteration uses."""

    def __init__(self, prover, options):
        self.prover = prover
        self.options = options

    def header_facts(self, loop):
        return TRUE

    def facts_session(self, loop):
        return self.prover.prefix_session(TRUE)

    def quantifier_free(self, f):
        return f

    def loop_body_wlp(self, loop, w, trials, depth):
        return ge("x", 0)

    def modified_variables(self, loop):
        return {"x"}

    def true_on_entry(self, loop, w, trials, depth):
        return True


class TestInductionDeadline:
    def test_expired_deadline_interrupts_search_promptly(self):
        """Regression: the BFS used to check the deadline only inside
        prover queries, so a candidate space explored between queries
        could overrun a tiny budget unbounded.  The loop now checks at
        every iteration."""
        prover = _StallingProver()
        options = CheckerOptions(max_invariant_candidates=10 ** 6,
                                 max_induction_iterations=10 ** 6)
        engine = _StubEngine(prover, options)
        search = InductionIteration(engine, Loop(header=2, body={2, 3}),
                                    trials={}, depth=0)
        prover.deadline = time.monotonic() - 1.0
        t0 = time.monotonic()
        with pytest.raises(ProverTimeout):
            search.run(ge("x", 0))
        assert time.monotonic() - t0 < 5.0

    def test_live_deadline_lets_search_finish(self):
        prover = _StallingProver()
        prover.deadline = time.monotonic() + 60.0
        options = CheckerOptions(max_invariant_candidates=8)
        engine = _StubEngine(prover, options)
        search = InductionIteration(engine, Loop(header=2, body={2, 3}),
                                    trials={}, depth=0)
        outcome = search.run(ge("x", 0))
        assert not outcome.success  # prover refutes everything
        assert prover.queries > 0

    def test_sum_array_times_out_cleanly_with_tiny_budget(self):
        """A real program with an (effectively) expired budget reports
        undecided:timeout rather than hanging or crashing."""
        result = SUM_PROGRAM.check(CheckerOptions(timeout_s=1e-9))
        assert result.timed_out
        assert not result.safe


class TestServiceMetricsClock:
    def test_uptime_is_monotonic_not_wall_clock(self, monkeypatch):
        metrics = ServiceMetrics()
        real_time = time.time
        monkeypatch.setattr(time, "time",
                            lambda: real_time() + 86400.0)
        snapshot = metrics.snapshot()
        assert 0.0 <= snapshot["uptime_seconds"] < 60.0

    def test_cache_hit_rate_present_when_idle(self):
        snapshot = ServiceMetrics().snapshot()
        assert snapshot["prover"]["cache_hit_rate"] == 0.0
