"""The per-check wall-clock timeout (``CheckerOptions.timeout_s``):
the distinct undecided verdict, clean abort, deadline hygiene on warm
provers, and the CLI exit-code mapping."""

import pytest

from repro.analysis.checker import SafetyChecker
from repro.analysis.options import CheckerOptions
from repro.cli import main
from repro.logic.prover import Prover
from repro.programs.sum_array import PROGRAM, SOURCE, SPEC

TINY = 1e-9


class TestTimeoutVerdict:
    def test_tiny_budget_times_out(self):
        result = PROGRAM.check(CheckerOptions(timeout_s=TINY))
        assert result.timed_out
        assert result.verdict == "undecided:timeout"
        assert not result.safe
        assert result.violations == []  # aborted, not rejected

    def test_ample_budget_is_a_no_op(self):
        result = PROGRAM.check(CheckerOptions(timeout_s=600.0))
        assert not result.timed_out
        assert result.verdict == "certified"

    def test_no_budget_by_default(self):
        assert CheckerOptions().timeout_s is None
        assert not PROGRAM.check().timed_out

    def test_timeout_with_parallel_discharge(self):
        result = PROGRAM.check(CheckerOptions(timeout_s=TINY, jobs=2))
        assert result.verdict == "undecided:timeout"

    def test_summary_and_json_mark_the_timeout(self):
        from repro.analysis.report import result_to_json
        result = PROGRAM.check(CheckerOptions(timeout_s=TINY))
        assert "UNDECIDED (timeout)" in result.summary()
        payload = result_to_json(result)
        assert payload["verdict"] == "undecided:timeout"
        assert payload["timed_out"] is True


class TestDeadlineHygiene:
    def test_warm_prover_sheds_the_deadline(self):
        # A service worker reuses one prover across jobs: a finished
        # (even timed-out) check must not leave its budget behind.
        prover = Prover()
        checker = SafetyChecker(PROGRAM.program(), PROGRAM.spec(),
                                options=CheckerOptions(timeout_s=TINY),
                                prover=prover)
        assert checker.check().timed_out
        assert prover.deadline is None
        fresh = SafetyChecker(PROGRAM.program(), PROGRAM.spec(),
                              prover=prover)
        assert fresh.check().verdict == "certified"

    def test_timeout_error_is_not_a_resource_fallback(self):
        # ProverTimeout must abort the check, not be swallowed by the
        # conservative ProverError fallback in is_satisfiable.
        from repro.errors import ProverError, ProverTimeout
        assert not issubclass(ProverTimeout, ProverError)


class TestCliTimeout:
    @pytest.fixture()
    def files(self, tmp_path):
        code = tmp_path / "sum.s"
        code.write_text(SOURCE)
        spec = tmp_path / "sum.policy"
        spec.write_text(SPEC)
        return code, spec

    def test_exit_code_three_on_timeout(self, files, capsys):
        code, spec = files
        rc = main(["check", str(code), str(spec),
                   "--timeout", "0.000000001"])
        assert rc == 3
        assert "UNDECIDED (timeout)" in capsys.readouterr().out

    def test_generous_timeout_still_certifies(self, files, capsys):
        code, spec = files
        assert main(["check", str(code), str(spec),
                     "--timeout", "600"]) == 0
        assert "SAFE" in capsys.readouterr().out
