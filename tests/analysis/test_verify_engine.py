"""Unit tests for the verification engine: sweeps, interprocedural
walks, trusted-call crossing, induction-iteration behaviors."""

import pytest

from repro import parse_spec
from repro.analysis.annotate import annotate
from repro.analysis.prepare import prepare
from repro.analysis.propagate import propagate
from repro.analysis.verify import VerificationEngine
from repro.analysis.options import CheckerOptions
from repro.cfg import CFG, build_cfg
from repro.logic import TRUE, conj, congruent, eq, ge, le, lt, ne
from repro.logic.terms import Linear
from repro.sparc import assemble


def build_engine(source, spec_text, options=None):
    program = assemble(source)
    spec = parse_spec(spec_text)
    preparation = prepare(spec)
    cfg = build_cfg(program, trusted_labels=set(spec.functions))
    propagation = propagate(cfg, preparation, spec)
    annotations = annotate(cfg, propagation.inputs, spec,
                           preparation.locations)
    engine = VerificationEngine(cfg, propagation, preparation, spec,
                                options)
    return engine, cfg, annotations


def node_at(cfg, annotations, index):
    return next(a.uid for a in annotations.values() if a.index == index)


def v(name, coeff=1):
    return Linear.var(name, coeff)


BASIC_SPEC = "invoke %o0 = a\ninvoke %o1 = b\nassume a >= 1\n"


class TestStraightLine:
    def test_initial_constraints_discharge_conditions(self):
        engine, cfg, anns = build_engine(
            "add %o0,%o1,%o2\nretl\nnop", BASIC_SPEC)
        uid = node_at(cfg, anns, 1)
        assert engine.prove_at(uid, ge(v("%o0"), 1), {}, 0)
        assert not engine.prove_at(uid, ge(v("%o1"), 1), {}, 0)

    def test_substitution_chain(self):
        engine, cfg, anns = build_engine("""
        mov %o0,%o2
        add %o2,1,%o2
        retl
        nop
        """, BASIC_SPEC)
        uid = node_at(cfg, anns, 3)   # at retl
        assert engine.prove_at(uid, ge(v("%o2"), 2), {}, 0)
        assert not engine.prove_at(uid, ge(v("%o2"), 3), {}, 0)

    def test_branch_conditions_used(self):
        engine, cfg, anns = build_engine("""
        1: cmp %o0,10
        2: bl 5
        3: nop
        4: retl
        5: nop
        6: retl
        7: nop
        """, BASIC_SPEC)
        # Instruction 6 is only reached on the taken (%o0 < 10) edge...
        # careful: 5 is the slot; target of bl is 5, continuing at 6.
        uid6 = node_at(cfg, anns, 6)
        assert engine.prove_at(uid6, lt(v("%o0"), 10), {}, 0)
        # The fall-through return at 4 sees %o0 >= 10.
        uid4 = node_at(cfg, anns, 4)
        assert engine.prove_at(uid4, ge(v("%o0"), 10), {}, 0)


class TestLoops:
    COUNTDOWN = """
    1: mov %o0,%o2
    2: cmp %o2,0
    3: ble 7
    4: nop
    5: ba 2
    6: dec %o2
    7: retl
    8: nop
    """

    def test_loop_invariant_upper_bound(self):
        engine, cfg, anns = build_engine(self.COUNTDOWN, BASIC_SPEC)
        # %o2 <= a holds at the loop header in every iteration.
        uid = node_at(cfg, anns, 2)
        assert engine.prove_at(uid, le(v("%o2"), v("a")), {}, 0)

    def test_non_invariant_rejected(self):
        engine, cfg, anns = build_engine(self.COUNTDOWN, BASIC_SPEC)
        uid = node_at(cfg, anns, 2)
        assert not engine.prove_at(uid, eq(v("%o2"), v("a")), {}, 0)

    def test_congruence_invariant(self):
        engine, cfg, anns = build_engine("""
        1: clr %o2
        2: cmp %o2,64
        3: bge 7
        4: nop
        5: ba 2
        6: add %o2,4,%o2
        7: retl
        8: nop
        """, BASIC_SPEC)
        uid = node_at(cfg, anns, 2)
        assert engine.prove_at(uid, congruent(v("%o2"), 4), {}, 0)
        assert not engine.prove_at(uid, congruent(v("%o2"), 8), {}, 0)

    def test_condition_after_loop(self):
        engine, cfg, anns = build_engine(self.COUNTDOWN, BASIC_SPEC)
        # After the loop exits, %o2 <= 0.
        uid = node_at(cfg, anns, 7)
        assert engine.prove_at(uid, le(v("%o2"), 0), {}, 0)


class TestInterprocedural:
    CALLER = """
    1: mov %o7,%g4
    2: call helper
    3: mov 5,%o0
    4: mov %g4,%o7
    5: retl
    6: nop
    helper:
    7: retl
    8: add %o0,1,%o0
    """

    def test_callee_condition_proved_at_call_site(self):
        engine, cfg, anns = build_engine(self.CALLER, BASIC_SPEC)
        # Inside helper, %o0 = 5 (set in the caller's delay slot).
        uid = node_at(cfg, anns, 7)
        assert engine.prove_at(uid, eq(v("%o0"), 5), {}, 0)
        assert not engine.prove_at(uid, eq(v("%o0"), 6), {}, 0)

    def test_caller_condition_after_callee(self):
        engine, cfg, anns = build_engine(self.CALLER, BASIC_SPEC)
        # After the call, the callee's effect (o0 = 6) is visible.
        uid = node_at(cfg, anns, 4)
        assert engine.prove_at(uid, eq(v("%o0"), 6), {}, 0)


class TestTrustedCalls:
    SPEC = BASIC_SPEC + """
    function mystery {
        returns %o0 : int = initialized perms o
        ensures %o0 >= 0
        clobbers %g1
    }
    """
    SOURCE = """
    1: mov %o7,%g4
    2: call mystery
    3: nop
    4: mov %g4,%o7
    5: retl
    6: nop
    """

    def test_postcondition_assumed(self):
        engine, cfg, anns = build_engine(self.SOURCE, self.SPEC)
        uid = node_at(cfg, anns, 4)
        assert engine.prove_at(uid, ge(v("%o0"), 0), {}, 0)

    def test_return_value_otherwise_unknown(self):
        engine, cfg, anns = build_engine(self.SOURCE, self.SPEC)
        uid = node_at(cfg, anns, 4)
        assert not engine.prove_at(uid, ge(v("%o0"), 1), {}, 0)

    def test_untouched_register_survives_call(self):
        # %o1 is not in the clobber set, so facts about it survive the
        # trusted call.
        engine, cfg, anns = build_engine("""
        1: mov 3,%o1
        2: mov %o7,%g4
        3: call mystery
        4: nop
        5: mov %g4,%o7
        6: retl
        7: nop
        """, self.SPEC)
        uid = node_at(cfg, anns, 5)
        assert engine.prove_at(uid, eq(v("%o1"), 3), {}, 0)
        # %g1 *is* clobbered: nothing is known about it afterwards.
        assert not engine.prove_at(uid, ge(v("%g1"), 0), {}, 0)


class TestEngineBookkeeping:
    def test_failed_targets_cached(self):
        engine, cfg, anns = build_engine(TestLoops.COUNTDOWN, BASIC_SPEC)
        uid = node_at(cfg, anns, 2)
        bogus = eq(v("%o2"), v("a"))
        assert not engine.prove_at(uid, bogus, {}, 0)
        runs = engine.induction_runs
        assert not engine.prove_at(uid, bogus, {}, 0)
        assert engine.induction_runs == runs  # served from the cache

    def test_proven_invariant_reused(self):
        engine, cfg, anns = build_engine(TestLoops.COUNTDOWN, BASIC_SPEC)
        uid = node_at(cfg, anns, 2)
        assert engine.prove_at(uid, le(v("%o2"), v("a")), {}, 0)
        runs = engine.induction_runs
        # A weaker consequence is discharged by the recorded invariant.
        assert engine.prove_at(uid, le(v("%o2"), v("a") + 5), {}, 0)
        assert engine.induction_runs == runs
