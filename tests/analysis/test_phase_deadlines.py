"""The wall-clock budget must be honoured *inside* phases 2–4, not
just between them: the propagation fixpoint, the forward-bounds pass,
the annotation sweep, and the local-verification loop each poll
``Prover.check_deadline`` so a pathological input aborts with the
distinct ``undecided:timeout`` verdict promptly — the pre-existing
checks only fired at phase boundaries and inside the induction BFS.
"""

import time

import pytest

from repro.analysis.annotate import annotate
from repro.analysis.checker import SafetyChecker, check_assembly
from repro.analysis.forward import ForwardBounds
from repro.analysis.options import CheckerOptions
from repro.analysis.prepare import prepare
from repro.analysis.propagate import propagate
from repro.analysis.verify import verify_local
from repro.cfg.builder import build_cfg
from repro.errors import ProverTimeout
from repro.logic.prover import Prover
from repro.programs.sum_array import PROGRAM

TINY = 1e-9


@pytest.fixture()
def phases():
    program = PROGRAM.program().lower()
    spec = PROGRAM.spec()
    preparation = prepare(spec, arch=program.arch)
    cfg = build_cfg(program, trusted_labels=set(spec.functions))
    return cfg, preparation, spec


def expired():
    prover = Prover()
    prover.deadline = time.monotonic() - 1.0
    return prover.check_deadline


class TestPhaseHooks:
    def test_propagate_honours_the_deadline(self, phases):
        cfg, preparation, spec = phases
        with pytest.raises(ProverTimeout):
            propagate(cfg, preparation, spec, CheckerOptions(),
                      check_deadline=expired())

    def test_forward_bounds_honours_the_deadline(self, phases):
        cfg, preparation, __ = phases
        with pytest.raises(ProverTimeout):
            ForwardBounds(cfg, preparation.initial_constraints,
                          check_deadline=expired())

    def test_annotate_honours_the_deadline(self, phases):
        cfg, preparation, spec = phases
        propagation = propagate(cfg, preparation, spec,
                                CheckerOptions())
        with pytest.raises(ProverTimeout):
            annotate(cfg, propagation.inputs, spec,
                     preparation.locations, check_deadline=expired())

    def test_verify_local_honours_the_deadline(self, phases):
        cfg, preparation, spec = phases
        propagation = propagate(cfg, preparation, spec,
                                CheckerOptions())
        annotations = annotate(cfg, propagation.inputs, spec,
                               preparation.locations)
        with pytest.raises(ProverTimeout):
            verify_local(annotations, check_deadline=expired())

    def test_hooks_are_optional(self, phases):
        # No callback: the phases run exactly as before.
        cfg, preparation, spec = phases
        propagation = propagate(cfg, preparation, spec,
                                CheckerOptions())
        annotations = annotate(cfg, propagation.inputs, spec,
                               preparation.locations)
        assert verify_local(annotations) == []


class TestEndToEnd:
    def test_tiny_budget_aborts_inside_phase_two(self):
        """With an already-expired budget the checker must return
        ``undecided:timeout`` promptly — the propagation worklist polls
        the deadline, so even a propagation-heavy program cannot run
        the whole fixpoint before noticing."""
        t0 = time.perf_counter()
        result = PROGRAM.check(CheckerOptions(timeout_s=TINY))
        elapsed = time.perf_counter() - t0
        assert result.verdict == "undecided:timeout"
        assert result.violations == []
        assert elapsed < 5.0

    def test_timeout_result_is_not_cached_as_a_verdict(self, tmp_path):
        """A timed-out run stores no pipeline payloads (phases 2–4
        never completed), and a later run with an ample budget on the
        same cache file certifies normally."""
        import os
        cache = os.path.join(str(tmp_path), "c.sqlite")
        timed_out = PROGRAM.check(
            CheckerOptions(timeout_s=TINY, cache_path=cache))
        assert timed_out.verdict == "undecided:timeout"
        fresh = PROGRAM.check(CheckerOptions(cache_path=cache))
        assert fresh.verdict == "certified"
        stats = fresh.prover_stats
        assert stats["unit_pipeline_hits"] == 0
        assert stats["unit_pipeline_stores"] > 0

    def test_worker_deadline_reaches_propagation(self):
        """Pool workers rebuild phases 1–2 in-process; their inherited
        absolute budget must bound the rebuilt propagation too."""
        result = check_assembly(
            PROGRAM.source, PROGRAM.spec_text,
            name="sum", options=CheckerOptions(jobs=2, timeout_s=TINY))
        assert result.verdict == "undecided:timeout"
