"""Phase 2–4 replay (the full-pipeline incremental layer): a warm
unchanged re-check must reconstruct the propagation fixpoint, the
annotations, the local verdicts, and the loop-header forward facts from
the persistent store — byte-identical to a cache-free run — and the
``kind='pipeline'`` payloads must invalidate on exactly the inputs that
can change them (body, CFG structure, program layout, spec,
verdict-affecting options) and on nothing else.
"""

import json
import os
import sqlite3
import subprocess
import sys

from repro.analysis.checker import check_assembly
from repro.analysis.options import CheckerOptions
from repro.analysis.report import result_to_json, verdict_projection
from repro.bench import (
    INCREMENTAL_EDITED_SOURCE, INCREMENTAL_SOURCE, INCREMENTAL_SPEC,
)

RISCV_SPEC_RW = """
loc e   : int    = initialized  perms rwo  region V summary
loc arr : int[n] = {e}          perms rwfo region V
rule [V : int : rwo]
rule [V : int[n] : rwfo]
invoke a0 = arr
assume n = 10
"""


def _check(source, options):
    return check_assembly(source, INCREMENTAL_SPEC,
                          name="incremental", options=options)


def _fingerprint(result):
    return (result.safe,
            tuple((p.uid, p.index, p.proved) for p in result.proofs),
            tuple((v.index, v.category, v.description, v.phase)
                  for v in result.violations))


def _json_bytes(result):
    return json.dumps(verdict_projection(result_to_json(result)),
                      sort_keys=True)


def _pipeline_stats(result):
    return {key: value
            for key, value in result.prover_stats.items()
            if key.startswith("unit_pipeline")}


def cache_at(tmp_path):
    return os.path.join(str(tmp_path), "units.sqlite")


def _reordered_source():
    """INCREMENTAL_SOURCE with the (call-independent) ``fthree`` block
    moved ahead of ``ftwo``: every per-function body is unchanged, only
    the program layout differs."""
    head, _, tail = INCREMENTAL_SOURCE.partition("ftwo:")
    two_block, _, three_block = tail.partition("fthree:")
    return (head + "fthree:" + three_block.rstrip() + "\n\nftwo:"
            + two_block)


class TestReplay:
    def test_warm_recheck_replays_every_function(self, tmp_path):
        cache = cache_at(tmp_path)
        cold = _check(INCREMENTAL_SOURCE,
                      CheckerOptions(jobs=1, cache_path=cache))
        warm = _check(INCREMENTAL_SOURCE,
                      CheckerOptions(jobs=1, cache_path=cache))
        assert _pipeline_stats(cold) == {
            "unit_pipeline_lookups": 1, "unit_pipeline_hits": 0,
            "unit_pipeline_misses": 1,
            "unit_pipeline_replayed_functions": 0,
            "unit_pipeline_stores": 4}
        assert _pipeline_stats(warm) == {
            "unit_pipeline_lookups": 1, "unit_pipeline_hits": 1,
            "unit_pipeline_misses": 0,
            "unit_pipeline_replayed_functions": 4,
            "unit_pipeline_stores": 0}
        # Phases 2–4 were replayed, so phase 5 also hits every unit:
        # the whole re-check was digests plus store lookups.
        assert warm.prover_stats["unit_hits"] \
            == warm.prover_stats["unit_lookups"] > 0
        assert warm.times.annotation_and_local == 0.0

    def test_json_identical_across_cache_states(self, tmp_path):
        cache = cache_at(tmp_path)
        reference = _check(INCREMENTAL_SOURCE, CheckerOptions(jobs=1))
        cold = _check(INCREMENTAL_SOURCE,
                      CheckerOptions(jobs=1, cache_path=cache))
        warm = _check(INCREMENTAL_SOURCE,
                      CheckerOptions(jobs=1, cache_path=cache))
        disabled = _check(
            INCREMENTAL_SOURCE,
            CheckerOptions(jobs=1, cache_path=cache,
                           enable_unit_cache=False))
        assert _pipeline_stats(warm)["unit_pipeline_hits"] == 1
        assert _pipeline_stats(disabled) == {}
        want = _json_bytes(reference)
        assert want == _json_bytes(cold) == _json_bytes(warm) \
            == _json_bytes(disabled)

    def test_local_violations_replay_in_order(self, tmp_path):
        """A rejected program's local (phase 2–4) violations must come
        back from the store with identical content *and order*."""
        source = "1: sw zero,0(a0)\n2: sw zero,44(a0)\n3: ret\n"
        options = lambda: CheckerOptions(  # noqa: E731
            jobs=1, cache_path=cache_at(tmp_path))
        reference = check_assembly(source, RISCV_SPEC_RW, name="oob",
                                   arch="riscv",
                                   options=CheckerOptions(jobs=1))
        assert not reference.safe
        cold = check_assembly(source, RISCV_SPEC_RW, name="oob",
                              arch="riscv", options=options())
        warm = check_assembly(source, RISCV_SPEC_RW, name="oob",
                              arch="riscv", options=options())
        assert _pipeline_stats(warm)["unit_pipeline_hits"] == 1
        assert [str(v) for v in warm.violations] \
            == [str(v) for v in cold.violations] \
            == [str(v) for v in reference.violations]
        assert _json_bytes(reference) == _json_bytes(cold) \
            == _json_bytes(warm)

    def test_replay_emits_a_span(self, tmp_path):
        from repro.trace.schema import load_trace, validate_records
        cache = cache_at(tmp_path)
        _check(INCREMENTAL_SOURCE,
               CheckerOptions(jobs=1, cache_path=cache))
        trace = os.path.join(str(tmp_path), "warm.jsonl")
        warm = _check(INCREMENTAL_SOURCE,
                      CheckerOptions(jobs=1, cache_path=cache,
                                     trace_path=trace))
        assert _pipeline_stats(warm)["unit_pipeline_hits"] == 1
        records = load_trace(trace)
        validate_records(records)
        names = [r["name"] for r in records if r.get("type") == "span"]
        assert "phase:replayed" in names
        # The replaced phases do not run, so their spans must be gone.
        assert "phase:typestate_propagation" not in names
        assert "phase:annotation" not in names
        assert "phase:local_verification" not in names
        span = next(r for r in records
                    if r.get("type") == "span"
                    and r["name"] == "phase:replayed")
        assert span["attrs"]["functions"] == 4
        assert span["attrs"]["nodes"] > 0


class TestInvalidation:
    def test_body_edit_misses(self, tmp_path):
        cache = cache_at(tmp_path)
        _check(INCREMENTAL_SOURCE,
               CheckerOptions(jobs=1, cache_path=cache))
        edited = _check(INCREMENTAL_EDITED_SOURCE,
                        CheckerOptions(jobs=1, cache_path=cache))
        stats = _pipeline_stats(edited)
        assert stats["unit_pipeline_hits"] == 0
        assert stats["unit_pipeline_misses"] == 1
        # ... and the miss restores the payloads under the new digests.
        assert stats["unit_pipeline_stores"] == 4
        rewarm = _check(INCREMENTAL_EDITED_SOURCE,
                        CheckerOptions(jobs=1, cache_path=cache))
        assert _pipeline_stats(rewarm)["unit_pipeline_hits"] == 1

    def test_spec_change_misses(self, tmp_path):
        cache = cache_at(tmp_path)
        _check(INCREMENTAL_SOURCE,
               CheckerOptions(jobs=1, cache_path=cache))
        changed_spec = INCREMENTAL_SPEC + \
            "loc pad : int = initialized perms ro region V summary\n"
        result = check_assembly(
            INCREMENTAL_SOURCE, changed_spec, name="incremental",
            options=CheckerOptions(jobs=1, cache_path=cache))
        assert _pipeline_stats(result)["unit_pipeline_hits"] == 0

    def test_verdict_affecting_option_misses(self, tmp_path):
        cache = cache_at(tmp_path)
        _check(INCREMENTAL_SOURCE,
               CheckerOptions(jobs=1, cache_path=cache))
        result = _check(
            INCREMENTAL_SOURCE,
            CheckerOptions(jobs=1, cache_path=cache,
                           max_propagation_steps=50000))
        assert _pipeline_stats(result)["unit_pipeline_hits"] == 0

    def test_performance_option_still_hits(self, tmp_path):
        cache = cache_at(tmp_path)
        _check(INCREMENTAL_SOURCE,
               CheckerOptions(jobs=1, cache_path=cache))
        result = _check(
            INCREMENTAL_SOURCE,
            CheckerOptions(jobs=1, cache_path=cache,
                           enable_matrix_kernel=False,
                           enable_slicing=False))
        assert _pipeline_stats(result)["unit_pipeline_hits"] == 1

    def test_function_reorder_misses_but_matches(self, tmp_path):
        """Swapping two function blocks keeps every per-function body
        (and hence structure digest) identical while reassigning uids
        and indices — exactly the hazard the layout digest pins.  The
        reordered program must not replay the original's uid-keyed
        payloads, and its verdicts must match a cache-free check."""
        cache = cache_at(tmp_path)
        reordered = _reordered_source()
        assert reordered != INCREMENTAL_SOURCE
        _check(INCREMENTAL_SOURCE,
               CheckerOptions(jobs=1, cache_path=cache))
        reference = _check(reordered, CheckerOptions(jobs=1))
        warm = _check(reordered,
                      CheckerOptions(jobs=1, cache_path=cache))
        assert _pipeline_stats(warm)["unit_pipeline_hits"] == 0
        assert _json_bytes(reference) == _json_bytes(warm)
        assert warm.safe


_KEYS_SNIPPET = """
import sqlite3, sys
sys.path.insert(0, %r)
from repro.analysis.checker import check_assembly
from repro.analysis.options import CheckerOptions
from repro.bench import INCREMENTAL_SOURCE, INCREMENTAL_SPEC
check_assembly(INCREMENTAL_SOURCE, INCREMENTAL_SPEC,
               name="incremental",
               options=CheckerOptions(jobs=1, cache_path=%r))
conn = sqlite3.connect(%r)
for key, deps in conn.execute(
        "SELECT unit_key, deps_digest FROM units "
        "WHERE kind='pipeline' ORDER BY unit_key"):
    print(key, deps)
"""


class TestDigestStability:
    def test_pipeline_keys_identical_across_hash_seeds(self, tmp_path):
        """The stored pipeline keys and dependency digests — structure
        digests, layout digest, spec and options digests combined —
        must not depend on Python's hash randomization: a cache written
        by one process must hit in the next."""
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))), "src")
        keys = []
        for seed in ("1", "7"):
            cache = os.path.join(str(tmp_path),
                                 "seed%s.sqlite" % seed)
            env = dict(os.environ, PYTHONHASHSEED=seed)
            out = subprocess.run(
                [sys.executable, "-c",
                 _KEYS_SNIPPET % (src, cache, cache)],
                capture_output=True, text=True, env=env, check=True)
            keys.append(out.stdout.strip().splitlines())
        assert keys[0] == keys[1]
        assert len(keys[0]) == 4  # main, fone, ftwo, fthree

    def test_cross_process_replay_hits(self, tmp_path):
        """End to end: a cache primed under one hash seed replays under
        another (fresh process each, so no interned state leaks)."""
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))), "src")
        cache = cache_at(tmp_path)
        snippet = (
            "import sys\n"
            "sys.path.insert(0, %r)\n"
            "from repro.analysis.checker import check_assembly\n"
            "from repro.analysis.options import CheckerOptions\n"
            "from repro.bench import INCREMENTAL_SOURCE, "
            "INCREMENTAL_SPEC\n"
            "r = check_assembly(INCREMENTAL_SOURCE, INCREMENTAL_SPEC,"
            " name='incremental',"
            " options=CheckerOptions(jobs=1, cache_path=%r))\n"
            "print(r.prover_stats.get('unit_pipeline_hits'))\n"
            % (src, cache))
        hits = []
        for seed in ("3", "11"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            out = subprocess.run([sys.executable, "-c", snippet],
                                 capture_output=True, text=True,
                                 env=env, check=True)
            hits.append(out.stdout.strip())
        assert hits == ["0", "1"]


class TestStatsPlumbing:
    def test_summary_reports_pipeline_counters(self, tmp_path):
        cache = cache_at(tmp_path)
        _check(INCREMENTAL_SOURCE,
               CheckerOptions(jobs=1, cache_path=cache))
        warm = _check(INCREMENTAL_SOURCE,
                      CheckerOptions(jobs=1, cache_path=cache))
        summary = warm.summary()
        assert "pipeline (phases 2-4)" in summary
        assert "hits=1" in summary

    def test_cache_stats_breaks_units_down_by_kind(self, tmp_path):
        from repro.logic.persist import PersistentProverCache
        cache = cache_at(tmp_path)
        _check(INCREMENTAL_SOURCE,
               CheckerOptions(jobs=1, cache_path=cache))
        with PersistentProverCache(cache) as handle:
            stats = handle.stats()
        assert stats["units_by_kind"]["pipeline"] == 4
        assert stats["units_by_kind"]["unit"] >= 3
        assert stats["units"] == sum(stats["units_by_kind"].values())
