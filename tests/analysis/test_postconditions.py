"""Host safety postconditions (paper Section 2: "a safety policy can
also include a safety postcondition … for ensuring that certain
invariants defined on the host data are restored by the time control is
returned to the host")."""

import pytest

from repro import check_assembly

COUNTER_SPEC = """
type gate = struct { lockcount: int; waiters: int }
loc g  : gate            perms rw  region H
loc gp : gate ptr = {g}  perms rfo region H
rule [H : gate.lockcount, gate.waiters : rwo]
invoke %o0 = gp
assume g.lockcount = 0
ensure g.lockcount = 0
"""


class TestRestoredInvariant:
    def test_balanced_lock_unlock_verifies(self):
        source = """
        1: ld [%o0],%g1
        2: inc %g1
        3: st %g1,[%o0]      ! lockcount++
        4: ld [%o0+4],%g2    ! inspect waiters
        5: ld [%o0],%g1
        6: dec %g1
        7: st %g1,[%o0]      ! lockcount--
        8: retl
        9: nop
        """
        result = check_assembly(source, COUNTER_SPEC, name="balanced")
        assert result.safe, result.summary()

    def test_leaked_lock_flagged_at_return(self):
        source = """
        1: ld [%o0],%g1
        2: inc %g1
        3: st %g1,[%o0]      ! lockcount++ ... and never released
        4: retl
        5: nop
        """
        result = check_assembly(source, COUNTER_SPEC, name="leaked")
        assert not result.safe
        assert any(v.category == "host-postcondition" and v.index == 4
                   for v in result.violations)

    def test_constant_restore_verifies(self):
        source = """
        1: mov 7,%g1
        2: st %g1,[%o0]      ! scribble
        3: st %g0,[%o0]      ! restore the invariant value
        4: retl
        5: nop
        """
        result = check_assembly(source, COUNTER_SPEC, name="restore")
        assert result.safe, result.summary()

    def test_unconstrained_store_flagged(self):
        source = """
        1: st %o1,[%o0]      ! host field := arbitrary caller value
        2: retl
        3: nop
        """
        result = check_assembly(source, COUNTER_SPEC,
                                name="arbitrary-store")
        assert not result.safe
        assert any(v.category == "host-postcondition"
                   for v in result.violations)

    def test_postcondition_checked_on_every_return(self):
        source = """
        1: cmp %o1,0
        2: ble 6
        3: nop
        4: retl              ! early return: invariant untouched - fine
        5: nop
        6: mov 1,%g1
        7: st %g1,[%o0]      ! late path breaks it
        8: retl
        9: nop
        """
        result = check_assembly(source, COUNTER_SPEC, name="two-returns")
        assert not result.safe
        flagged = {v.index for v in result.violations
                   if v.category == "host-postcondition"}
        assert flagged == {8}
