"""State-lattice (Figure 5) and access-permission tests, with
hypothesis checks of the meet-semilattice laws."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.typesys.access import (
    ALL_ACCESS, AccessSet, AccessTuple, NO_ACCESS, access,
)
from repro.typesys.state import (
    AggregateState, BOTTOM_STATE, INIT, NULL, PointsTo, TOP_STATE,
    UNINIT, UNINIT_POINTER, points_to,
)
from repro.typesys.typestate import (
    BOTTOM_TYPESTATE, TOP_TYPESTATE, Typestate,
)
from repro.typesys.types import INT32, TOP_TYPE


class TestStateMeet:
    def test_top_is_identity(self):
        assert TOP_STATE.meet(INIT) == INIT
        assert points_to("e").meet(TOP_STATE) == points_to("e")

    def test_bottom_absorbs(self):
        assert BOTTOM_STATE.meet(INIT) == BOTTOM_STATE

    def test_initialized_meets_uninitialized_down(self):
        # Initialized on one path only = may be uninitialized.
        assert INIT.meet(UNINIT) == UNINIT
        assert UNINIT.meet(INIT) == UNINIT

    def test_points_to_meet_is_union(self):
        # Paper Section 4.1: P1 ⊒ P2 iff P2 ⊇ P1, so meet = union.
        a, b = points_to("e"), points_to("f", NULL)
        met = a.meet(b)
        assert isinstance(met, PointsTo)
        assert met.targets == frozenset({"e", "f", NULL})

    def test_uninit_pointer_below_points_to(self):
        assert points_to("e").meet(UNINIT_POINTER) == UNINIT_POINTER

    def test_scalar_vs_pointer_states_meet_to_bottom(self):
        assert INIT.meet(points_to("e")) == BOTTOM_STATE

    def test_null_queries(self):
        maybe = points_to("e", NULL)
        assert maybe.may_be_null
        assert maybe.non_null_targets == frozenset({"e"})
        assert maybe.without_null() == points_to("e")
        assert points_to(NULL).without_null() == BOTTOM_STATE

    def test_empty_points_to_rejected(self):
        with pytest.raises(ValueError):
            PointsTo(frozenset())

    def test_aggregate_meet_componentwise(self):
        a = AggregateState(fields=(INIT, UNINIT))
        b = AggregateState(fields=(INIT, INIT))
        assert a.meet(b) == AggregateState(fields=(INIT, UNINIT))

    def test_aggregate_shape_mismatch_bottom(self):
        a = AggregateState(fields=(INIT,))
        b = AggregateState(fields=(INIT, INIT))
        assert a.meet(b) == BOTTOM_STATE


class TestAccess:
    def test_letters(self):
        fo = access("fo")
        assert fo.followable and fo.operable and not fo.executable

    def test_rw_letters_rejected_for_values(self):
        with pytest.raises(ValueError):
            access("rwo")

    def test_meet_is_intersection(self):
        assert access("fo").meet(access("xo")) == access("o")
        assert access("fxo").meet(NO_ACCESS) == NO_ACCESS

    def test_tuple_meet(self):
        a = AccessTuple(members=(access("o"), access("fo")))
        b = AccessTuple(members=(access("o"), access("o")))
        met = a.meet(b)
        assert isinstance(met, AccessTuple)
        assert met.members[1] == access("o")

    def test_set_distributes_over_tuple(self):
        t = AccessTuple(members=(access("fo"), access("xo")))
        met = access("o").meet(t)
        assert isinstance(met, AccessTuple)
        assert met.members == (access("o"), access("o"))


class TestTypestate:
    def test_meet_componentwise(self):
        a = Typestate(INT32, INIT, access("o"))
        b = Typestate(INT32, UNINIT, access("fo"))
        met = a.meet(b)
        assert met.state == UNINIT
        assert met.access == access("o")

    def test_top_and_bottom_flags(self):
        assert TOP_TYPESTATE.is_top
        assert not BOTTOM_TYPESTATE.is_top

    def test_operable_requires_initialized(self):
        assert Typestate(INT32, INIT, access("o")).operable
        assert not Typestate(INT32, UNINIT, access("o")).operable
        assert not Typestate(INT32, INIT, access("f")).operable

    def test_followable_requires_pointer_type(self):
        from repro.typesys.types import PointerType
        ptr = Typestate(PointerType(pointee=INT32), points_to("e"),
                        access("fo"))
        scalar = Typestate(INT32, INIT, access("fo"))
        assert ptr.followable
        assert not scalar.followable


_states = st.one_of(
    st.just(TOP_STATE), st.just(BOTTOM_STATE), st.just(INIT),
    st.just(UNINIT), st.just(UNINIT_POINTER),
    st.sets(st.sampled_from(["e", "f", NULL]), min_size=1,
            max_size=3).map(lambda s: PointsTo(frozenset(s))),
)


class TestMeetSemilatticeLaws:
    @given(_states)
    @settings(max_examples=60, deadline=None)
    def test_idempotent(self, s):
        assert s.meet(s) == s

    @given(_states, _states)
    @settings(max_examples=120, deadline=None)
    def test_commutative(self, a, b):
        assert a.meet(b) == b.meet(a)

    @given(_states, _states, _states)
    @settings(max_examples=150, deadline=None)
    def test_associative(self, a, b, c):
        assert a.meet(b).meet(c) == a.meet(b.meet(c))

    @given(_states, _states)
    @settings(max_examples=120, deadline=None)
    def test_meet_is_lower_bound(self, a, b):
        met = a.meet(b)
        assert met.leq(a) and met.leq(b)
