"""Type-lattice tests (paper Figure 4 and Section 4.1)."""

import pytest

from repro.typesys.types import (
    AbstractType, ArrayBaseType, ArrayMidType, BOTTOM_TYPE, INT8, INT16,
    INT32, Member, PointerType, StructType, TOP_TYPE, UINT8, UINT32,
    UnionType, alignof, ground_type, is_ground_subtype, lookup_fields,
    meet, sizeof,
)


class TestGroundTypes:
    def test_lookup_by_name(self):
        assert ground_type("int") is INT32
        assert ground_type("int8") is INT8
        assert ground_type("char") is INT8
        assert ground_type("uchar") is UINT8
        with pytest.raises(KeyError):
            ground_type("float")

    def test_sizes_and_alignment(self):
        assert sizeof(INT8) == 1 and alignof(INT8) == 1
        assert sizeof(INT16) == 2 and alignof(INT16) == 2
        assert sizeof(INT32) == 4 and alignof(INT32) == 4

    def test_subtyping_same_signedness_only(self):
        assert is_ground_subtype(INT8, INT32)
        assert is_ground_subtype(UINT8, UINT32)
        assert not is_ground_subtype(INT8, UINT32)
        assert not is_ground_subtype(INT32, INT8)
        assert is_ground_subtype(INT32, INT32)


class TestMeet:
    def test_meet_with_top_is_identity(self):
        t = ArrayBaseType(element=INT32, size="n")
        assert meet(TOP_TYPE, t) == t
        assert meet(t, TOP_TYPE) == t

    def test_meet_equal_types(self):
        t = PointerType(pointee=INT32)
        assert meet(t, t) == t

    def test_meet_of_distinct_non_pointers_is_bottom(self):
        a = AbstractType(name="jnienv", size=4)
        assert meet(a, AbstractType(name="other", size=4)) == BOTTOM_TYPE

    def test_ground_subtype_meet_is_narrower(self):
        assert meet(INT8, INT32) == INT8
        assert meet(INT32, INT8) == INT8

    def test_pointer_vs_non_pointer_is_bottom(self):
        assert meet(PointerType(pointee=INT32), INT32) == BOTTOM_TYPE

    def test_array_base_meets_mid_to_mid(self):
        base = ArrayBaseType(element=INT32, size="n")
        mid = ArrayMidType(element=INT32, size="n")
        assert meet(base, mid) == mid
        assert meet(mid, base) == mid

    def test_array_size_mismatch_is_bottom(self):
        a = ArrayBaseType(element=INT32, size="n")
        b = ArrayBaseType(element=INT32, size="m")
        assert meet(a, b) == BOTTOM_TYPE

    def test_array_element_mismatch_is_bottom(self):
        a = ArrayBaseType(element=INT32, size="n")
        b = ArrayMidType(element=INT8, size="n")
        assert meet(a, b) == BOTTOM_TYPE

    def test_bottom_absorbs(self):
        assert meet(BOTTOM_TYPE, INT32) == BOTTOM_TYPE


class TestAggregates:
    def _thread(self):
        return StructType(name="thread", members=(
            Member("tid", INT32, 0),
            Member("lwpid", INT32, 4),
            Member("next", PointerType(pointee=INT32), 8),
        ))

    def test_sizeof_struct(self):
        assert sizeof(self._thread()) == 12

    def test_member_lookup_by_name(self):
        thread = self._thread()
        assert thread.member("lwpid").offset == 4
        with pytest.raises(KeyError):
            thread.member("absent")

    def test_lookup_fields_offset_and_size(self):
        thread = self._thread()
        found = lookup_fields(thread, 4, 4)
        assert [m.label for m in found] == ["lwpid"]
        assert lookup_fields(thread, 2, 4) == ()
        assert lookup_fields(thread, 4, 2) == ()

    def test_lookup_fields_recurses_into_nested_structs(self):
        inner = StructType(name="pair", members=(
            Member("a", INT32, 0), Member("b", INT32, 4)))
        outer = StructType(name="outer", members=(
            Member("head", INT32, 0), Member("body", inner, 4)))
        found = lookup_fields(outer, 8, 4)
        assert [m.label for m in found] == ["body.b"]

    def test_union_members_share_offsets(self):
        union = UnionType(name="u", members=(
            Member("as_int", INT32, 0), Member("as_byte", UINT8, 0)))
        assert sizeof(union) == 4
        found = lookup_fields(union, 0, 4)
        assert [m.label for m in found] == ["as_int"]

    def test_pointer_size_is_word(self):
        assert sizeof(PointerType(pointee=self._thread())) == 4
        assert sizeof(ArrayMidType(element=INT32, size=10)) == 4
