"""Abstract stores and the location table."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.typesys.access import access
from repro.typesys.locations import AbstractLocation, LocationTable
from repro.typesys.state import INIT, UNINIT
from repro.typesys.store import AbstractStore, TOP_STORE
from repro.typesys.types import INT32
from repro.typesys.typestate import (
    BOTTOM_TYPESTATE, TOP_TYPESTATE, Typestate,
)

INT_TS = Typestate(INT32, INIT, access("o"))
UNINIT_TS = Typestate(INT32, UNINIT, access("o"))


class TestStore:
    def test_default_is_top(self):
        assert TOP_STORE["anything"].is_top

    def test_set_and_get(self):
        store = AbstractStore().set("%o0", INT_TS)
        assert store["%o0"] == INT_TS

    def test_set_is_functional(self):
        base = AbstractStore().set("%o0", INT_TS)
        updated = base.set("%o0", UNINIT_TS)
        assert base["%o0"] == INT_TS
        assert updated["%o0"] == UNINIT_TS

    def test_setting_top_erases_entry(self):
        store = AbstractStore().set("%o0", INT_TS)
        cleared = store.set("%o0", TOP_TYPESTATE)
        assert cleared == AbstractStore()

    def test_set_many(self):
        store = AbstractStore().set_many({"%o0": INT_TS,
                                          "%o1": UNINIT_TS})
        assert store["%o0"] == INT_TS and store["%o1"] == UNINIT_TS

    def test_meet_pointwise(self):
        a = AbstractStore().set("%o0", INT_TS)
        b = AbstractStore().set("%o0", UNINIT_TS).set("%o1", INT_TS)
        met = a.meet(b)
        assert met["%o0"].state == UNINIT
        # %o1 is ⊤ in a: the meet keeps b's value.
        assert met["%o1"] == INT_TS

    def test_equality_ignores_top_entries(self):
        a = AbstractStore({"%o0": INT_TS, "%o1": TOP_TYPESTATE})
        b = AbstractStore({"%o0": INT_TS})
        assert a == b

    def test_render_selected_names(self):
        store = AbstractStore().set("%o0", INT_TS)
        text = store.render(["%o0"])
        assert "%o0: <int32, initialized, o>" in text

    @given(st.lists(st.sampled_from(["%o0", "%o1", "%g1"]), max_size=3),
           st.lists(st.sampled_from(["%o0", "%o1", "%g1"]), max_size=3))
    @settings(max_examples=60, deadline=None)
    def test_meet_commutative(self, left, right):
        a = AbstractStore({name: INT_TS for name in left})
        b = AbstractStore({name: UNINIT_TS for name in right})
        assert a.meet(b) == b.meet(a)


class TestLocationTable:
    def test_registers_preloaded(self):
        table = LocationTable()
        assert "%o0" in table and "%i7" in table
        location = table["%g3"]
        assert location.readable and location.writable
        assert location.align == 0 and location.is_register

    def test_add_and_query(self):
        table = LocationTable()
        table.add(AbstractLocation(name="e", size=4, align=4,
                                   summary=True, region="V"))
        assert table.is_summary("e")
        assert not table.is_summary("%o0")
        assert table.get("absent") is None

    def test_duplicate_rejected(self):
        table = LocationTable()
        table.add(AbstractLocation(name="e"))
        with pytest.raises(ValueError):
            table.add(AbstractLocation(name="e"))

    def test_memory_locations_excludes_registers(self):
        table = LocationTable()
        table.add(AbstractLocation(name="e"))
        names = [l.name for l in table.memory_locations()]
        assert names == ["e"]

    def test_field_location_name(self):
        location = AbstractLocation(name="th",
                                    field_labels=("tid", "next"))
        assert location.field_location_name("tid") == "th.tid"

    def test_str_flags(self):
        location = AbstractLocation(name="e", size=4, readable=True,
                                    writable=False, summary=True)
        assert "r" in str(location) and "s" in str(location)
        assert "w" not in str(location).split("[")[1]
