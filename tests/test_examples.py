"""The examples are part of the public surface: run each one."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples")
    .glob("*.py"))


def _load(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(path, capsys):
    module = _load(path)
    module.main()          # every example asserts its own claims
    out = capsys.readouterr().out
    assert out.strip(), "examples should narrate what they show"


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "kernel_extension", "policy_exploration",
            "loop_invariants", "binary_audit"} <= names
