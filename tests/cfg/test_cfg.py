"""CFG construction tests: delay-slot replication (paper Figure 8),
loops, dominators, call graph."""

import pytest

from repro.errors import CFGError, RecursionRejected
from repro.cfg import (
    CFG, CallGraph, EdgeKind, NodeRole, build_cfg, compute_idoms,
    dominates, find_loops,
)
from repro.sparc import assemble

SUM_SOURCE = """
1: mov %o0,%o2
2: clr %o0
3: cmp %o0,%o1
4: bge 12
5: clr %g3
6: sll %g3, 2,%g2
7: ld [%o2+%g2],%g2
8: inc %g3
9: cmp %g3,%o1
10:bl 6
11:add %o0,%g2,%o0
12:retl
13:nop
"""


def sum_cfg():
    return build_cfg(assemble(SUM_SOURCE))


class TestDelaySlotReplication:
    def test_slot_instructions_replicated(self):
        cfg = sum_cfg()
        # Paper Figure 8: "The instructions at lines 5 and 11 are
        # replicated to model the semantics of delayed branches."
        assert len(cfg.nodes_for_index(5)) == 2
        assert len(cfg.nodes_for_index(11)) == 2
        roles = {n.role for n in cfg.nodes_for_index(5)}
        assert roles == {NodeRole.SLOT_TAKEN, NodeRole.SLOT_FALL}

    def test_node_count(self):
        cfg = sum_cfg()
        # 13 instructions + 2 replicas + 1 synthetic exit.
        assert len(cfg) == 16

    def test_branch_edges_carry_conditions(self):
        cfg = sum_cfg()
        branch = next(n for n in cfg.nodes.values() if n.index == 4
                      and n.role is NodeRole.NORMAL)
        conditions = {e.condition.taken for e in cfg.successors(branch.uid)}
        assert conditions == {True, False}

    def test_annulled_branch_skips_slot_on_fallthrough(self):
        cfg = build_cfg(assemble("""
        cmp %o0,%o1
        bge,a 5
        inc %g1
        nop
        retl
        nop
        """))
        assert len(cfg.nodes_for_index(3)) == 1  # only the taken copy

    def test_ba_annulled_skips_slot_entirely(self):
        cfg = build_cfg(assemble("ba,a 3\nnop\nretl\nnop"))
        assert cfg.nodes_for_index(2) == []

    def test_unconditional_ba_executes_slot_once(self):
        cfg = build_cfg(assemble("ba 3\ninc %g1\nretl\nnop"))
        assert len(cfg.nodes_for_index(2)) == 1

    def test_return_goes_to_synthetic_exit(self):
        cfg = sum_cfg()
        exit_uid = cfg.functions[CFG.MAIN].exit
        assert cfg.nodes[exit_uid].instruction is None
        assert cfg.pred_uids(exit_uid)  # the retl slot reaches it

    def test_dcti_couple_rejected(self):
        with pytest.raises(CFGError):
            build_cfg(assemble("ba 3\nba 1\nretl\nnop"))

    def test_fall_off_end_rejected(self):
        with pytest.raises(CFGError):
            build_cfg(assemble("add %o0,%o1,%o2\nnop"))

    def test_indirect_jump_rejected(self):
        with pytest.raises(CFGError):
            build_cfg(assemble("jmp %o3+8\nnop"))


class TestLoops:
    def test_sum_has_one_loop(self):
        cfg = sum_cfg()
        forest = find_loops(cfg, CFG.MAIN)
        assert forest.count == 1 and forest.inner_count == 0
        loop = forest.loops[0]
        assert cfg.node(loop.header).index == 6
        body_indices = {cfg.node(u).index for u in loop.body}
        assert body_indices == {6, 7, 8, 9, 10, 11}

    def test_nested_loops(self):
        cfg = build_cfg(assemble("""
        1: clr %o2
        2: cmp %o2,%o1
        3: bge 13
        4: nop
        5: clr %o3
        6: cmp %o3,%o1
        7: bge 11
        8: nop
        9: ba 6
        10: inc %o3
        11: ba 2
        12: inc %o2
        13: retl
        14: nop
        """))
        forest = find_loops(cfg, CFG.MAIN)
        assert forest.count == 2 and forest.inner_count == 1
        inner = next(l for l in forest.loops if l.is_inner())
        assert cfg.node(inner.header).index == 6
        assert inner.parent is not None
        assert cfg.node(inner.parent.header).index == 2
        assert inner.depth == 2

    def test_innermost_lookup(self):
        cfg = sum_cfg()
        forest = find_loops(cfg, CFG.MAIN)
        in_loop = next(n for n in cfg.nodes.values() if n.index == 7)
        outside = next(n for n in cfg.nodes.values() if n.index == 2)
        assert forest.containing(in_loop.uid) is forest.loops[0]
        assert forest.containing(outside.uid) is None


class TestDominators:
    def test_entry_dominates_everything(self):
        cfg = sum_cfg()
        idom = compute_idoms(cfg, CFG.MAIN)
        entry = cfg.functions[CFG.MAIN].entry
        for uid in cfg.functions[CFG.MAIN].node_uids:
            if uid in idom:
                assert dominates(idom, entry, uid)

    def test_loop_header_dominates_body(self):
        cfg = sum_cfg()
        idom = compute_idoms(cfg, CFG.MAIN)
        forest = find_loops(cfg, CFG.MAIN)
        loop = forest.loops[0]
        for uid in loop.body:
            assert dominates(idom, loop.header, uid)

    def test_branch_arms_not_dominated_by_each_other(self):
        cfg = sum_cfg()
        idom = compute_idoms(cfg, CFG.MAIN)
        taken = next(n for n in cfg.nodes.values()
                     if n.index == 5 and n.role is NodeRole.SLOT_TAKEN)
        fall = next(n for n in cfg.nodes.values()
                    if n.index == 5 and n.role is NodeRole.SLOT_FALL)
        assert not dominates(idom, taken.uid, fall.uid)
        assert not dominates(idom, fall.uid, taken.uid)


CALL_SOURCE = """
1: call helper
2: nop
3: retl
4: nop
helper:
5: retl
6: mov %o0,%o0
"""


class TestInterprocedural:
    def test_functions_discovered(self):
        cfg = build_cfg(assemble(CALL_SOURCE))
        assert set(cfg.functions) == {CFG.MAIN, "helper"}

    def test_call_return_summary_edges(self):
        cfg = build_cfg(assemble(CALL_SOURCE))
        kinds = {e.kind for n in cfg.nodes.values()
                 for e in cfg.successors(n.uid)}
        assert EdgeKind.CALL in kinds
        assert EdgeKind.RETURN in kinds
        assert EdgeKind.SUMMARY in kinds

    def test_external_call_has_no_call_edge(self):
        cfg = build_cfg(assemble("call hostfn\nnop\nretl\nnop"))
        kinds = {e.kind for n in cfg.nodes.values()
                 for e in cfg.successors(n.uid)}
        assert EdgeKind.CALL not in kinds
        assert EdgeKind.SUMMARY in kinds

    def test_recursion_rejected(self):
        cfg = build_cfg(assemble("""
        1: call rec
        2: nop
        3: retl
        4: nop
        rec:
        5: call rec
        6: nop
        7: retl
        8: nop
        """))
        with pytest.raises(RecursionRejected):
            CallGraph(cfg).check_no_recursion()

    def test_mutual_recursion_rejected(self):
        cfg = build_cfg(assemble("""
        1: call f
        2: nop
        3: retl
        4: nop
        f:
        5: call g
        6: nop
        7: retl
        8: nop
        g:
        9: call f
        10: nop
        11: retl
        12: nop
        """))
        with pytest.raises(RecursionRejected):
            CallGraph(cfg).check_no_recursion()

    def test_topological_order_callees_first(self):
        cfg = build_cfg(assemble(CALL_SOURCE))
        order = CallGraph(cfg).topological_order()
        assert order.index("helper") < order.index(CFG.MAIN)

    def test_dot_rendering(self):
        dot = sum_cfg().to_dot()
        assert dot.startswith("digraph")
        assert "replica" in dot
