"""CLI surface of the benchmark layer: ``bench --prover-replay``,
``bench --compare``, and ``trace summarize --hotspots``."""

import json

import pytest

from repro.cli import main
from repro.programs.sum_array import SOURCE, SPEC


@pytest.fixture()
def files(tmp_path):
    code = tmp_path / "sum.s"
    code.write_text(SOURCE)
    spec = tmp_path / "sum.policy"
    spec.write_text(SPEC)
    return code, spec, tmp_path


@pytest.fixture()
def formula_trace(files):
    code, spec, tmp = files
    trace = tmp / "trace.jsonl"
    assert main(["check", str(code), str(spec),
                 "--trace", str(trace), "--trace-formulas"]) == 0
    return trace, tmp


class TestProverReplay:
    def test_replay_reproduces_recorded_verdicts(self, formula_trace,
                                                 capsys):
        trace, tmp = formula_trace
        output = tmp / "BENCH_prover.json"
        assert main(["bench", "--prover-replay", str(trace),
                     "--output", str(output)]) == 0
        out = capsys.readouterr().out
        assert "replayed" in out
        report = json.loads(output.read_text())
        assert report["queries"] > 0
        assert report["verdict_parity"]["identical"]
        for name in ("full", "no-matrix", "no-slicing",
                     "no-incremental", "no-cache"):
            config = report["configs"][name]
            assert config["mismatches"] == []
            assert config["seconds"] >= 0.0

    def test_replay_without_formulas_fails_cleanly(self, files,
                                                   capsys):
        code, spec, tmp = files
        trace = tmp / "plain.jsonl"
        assert main(["check", str(code), str(spec),
                     "--trace", str(trace)]) == 0
        assert main(["bench", "--prover-replay", str(trace),
                     "--output", str(tmp / "out.json")]) == 2
        assert "--trace-formulas" in capsys.readouterr().err


def _report(seconds, proofs="PP"):
    return {
        "configs": {
            "enhanced": {
                "programs": [{
                    "name": "sum_array",
                    "seconds": seconds,
                    "verdicts": {"safe": True,
                                 "proof_verdicts": proofs,
                                 "violations": []},
                }],
                "total_seconds": seconds,
            },
        },
    }


class TestCompare:
    def test_speedup_table(self, tmp_path, capsys):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps(_report(2.0)))
        new.write_text(json.dumps(_report(1.0)))
        assert main(["bench", "--compare", str(old), str(new)]) == 0
        out = capsys.readouterr().out
        assert "2.00x" in out
        assert "verdicts identical" in out

    def test_verdict_mismatch_fails(self, tmp_path, capsys):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps(_report(2.0, proofs="PP")))
        new.write_text(json.dumps(_report(1.0, proofs="PF")))
        assert main(["bench", "--compare", str(old), str(new)]) == 1
        assert "MISMATCH" in capsys.readouterr().err


class TestHotspots:
    def test_summarize_hotspots(self, formula_trace, capsys):
        trace, _ = formula_trace
        assert main(["trace", "summarize", str(trace),
                     "--hotspots"]) == 0
        out = capsys.readouterr().out
        assert "hot queries" in out
        assert "hot obligation sites" in out

    def test_summarize_hotspots_json(self, formula_trace, capsys):
        trace, _ = formula_trace
        assert main(["trace", "summarize", str(trace), "--hotspots",
                     "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        hotspots = summary["hotspots"]
        assert hotspots["queries_by_digest"]
        assert hotspots["obligations_by_site"]
        total = sum(entry["count"]
                    for entry in hotspots["queries_by_digest"])
        assert total <= summary["queries"]["total"]

    def test_summarize_without_flag_omits_hotspots(self, formula_trace,
                                                   capsys):
        trace, _ = formula_trace
        assert main(["trace", "summarize", str(trace), "--json"]) == 0
        assert "hotspots" not in json.loads(capsys.readouterr().out)
