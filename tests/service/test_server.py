"""End-to-end HTTP tests of the check service: a real
ThreadingHTTPServer on an ephemeral port, exercised through the
``repro.service.client`` helpers and the ``repro submit`` CLI."""

import json

import pytest

from repro.cli import main
from repro.programs.sum_array import SOURCE, SPEC
from repro.service.client import (
    ServiceError, build_payload, fetch_json, submit,
)
from repro.service.server import CheckServer, ServeConfig


@pytest.fixture(scope="module")
def server():
    server = CheckServer(ServeConfig(port=0, workers=2))
    server.start_background()
    yield server
    server.close()


@pytest.fixture(scope="module")
def url(server):
    return server.url


BUGGY = SOURCE.replace("bl 6", "ble 6")


class TestEndpoints:
    def test_healthz(self, url):
        health = fetch_json(url, "/healthz")
        assert health["status"] == "ok"
        assert health["workers"] == 2

    def test_unknown_endpoint_404(self, url):
        with pytest.raises(ServiceError) as exc:
            fetch_json(url, "/nope")
        assert exc.value.status == 404

    def test_unknown_job_404(self, url):
        with pytest.raises(ServiceError) as exc:
            fetch_json(url, "/v1/jobs/never-existed")
        assert exc.value.status == 404

    def test_metrics_schema(self, url):
        metrics = fetch_json(url, "/metrics")
        assert "queue_depth" in metrics
        assert "counters" in metrics
        assert "dedup_hits" in metrics
        assert metrics["draining"] is False


class TestSubmission:
    def test_certified_verdict(self, url):
        job = submit(url, build_payload(SOURCE, SPEC, name="sum.s"))
        assert job["state"] == "completed"
        assert job["result"]["verdict"] == "certified"
        assert job["result"]["arch"] == "sparc"
        assert job["program_digest"] and job["spec_digest"]

    def test_rejected_verdict_with_violations(self, url):
        job = submit(url, build_payload(BUGGY, SPEC, name="buggy.s"))
        assert job["result"]["verdict"] == "rejected"
        assert job["result"]["violations"]

    def test_async_submit_then_poll(self, url):
        payload = build_payload(SOURCE, SPEC, name="sum-async.s",
                                wait=False)
        # Unique options so this cannot dedup onto earlier jobs.
        payload["options"] = {"timeout_s": 123.0}
        job = submit(url, payload)  # submit() polls to terminal
        assert job["state"] == "completed"
        assert job["result"]["verdict"] == "certified"

    def test_dedup_on_resubmission(self, url):
        payload = build_payload(SOURCE, SPEC, name="sum.s")
        submit(url, payload)
        before = fetch_json(url, "/metrics")["dedup_hits"]
        job = submit(url, payload)
        assert job["dedup"] == "verdict-cache"
        after = fetch_json(url, "/metrics")["dedup_hits"]
        assert after == before + 1

    def test_bad_spec_fails_job_not_server(self, url):
        job = submit(url, build_payload(SOURCE, "frobnicate",
                                        name="bad.s"))
        assert job["state"] == "failed"
        assert "error" in job
        # The server stays healthy for the next job.
        ok = submit(url, build_payload(SOURCE, SPEC, name="sum.s"))
        assert ok["result"]["verdict"] == "certified"

    def test_timeout_verdict_and_server_stays_healthy(self, url):
        tiny = build_payload(SOURCE, SPEC, name="sum.s",
                             timeout_s=1e-9)
        job = submit(url, tiny)
        assert job["result"]["verdict"] == "undecided:timeout"
        assert job["result"]["timed_out"] is True
        ok = submit(url, build_payload(BUGGY, SPEC, name="buggy.s"))
        assert ok["result"]["verdict"] == "rejected"


class TestValidation:
    def assert_400(self, url, payload):
        with pytest.raises(ServiceError) as exc:
            submit(url, payload)
        assert exc.value.status == 400
        return exc.value

    def test_missing_spec(self, url):
        self.assert_400(url, {"code": SOURCE})

    def test_missing_code(self, url):
        self.assert_400(url, {"spec": SPEC})

    def test_unknown_arch(self, url):
        error = self.assert_400(url, {"code": SOURCE, "spec": SPEC,
                                      "arch": "m68k"})
        assert "arch" in str(error)

    def test_bad_base64(self, url):
        self.assert_400(url, {"spec": SPEC, "binary": True,
                              "code_b64": "!!not-base64!!"})

    def test_unsupported_option(self, url):
        self.assert_400(url, {"code": SOURCE, "spec": SPEC,
                              "options": {"cache_path": "/etc/pwn"}})

    def test_negative_timeout(self, url):
        self.assert_400(url, {"code": SOURCE, "spec": SPEC,
                              "options": {"timeout_s": -1}})


class TestBackpressure:
    def test_queue_full_returns_429_with_retry_after(self):
        server = CheckServer(ServeConfig(port=0, workers=1,
                                         queue_limit=0))
        # Workers never started: the queue can only reject.
        server.httpd.daemon_threads = True
        import threading
        threading.Thread(target=server.httpd.serve_forever,
                         kwargs={"poll_interval": 0.1},
                         daemon=True).start()
        try:
            with pytest.raises(ServiceError) as exc:
                submit(server.url,
                       build_payload(SOURCE, SPEC, wait=False))
            assert exc.value.status == 429
            assert exc.value.retry_after_s >= 1
            metrics = fetch_json(server.url, "/metrics")
            assert metrics["counters"]["rejected_queue_full"] == 1
        finally:
            server.httpd.shutdown()
            server.httpd.server_close()


class TestDrain:
    def test_drain_finishes_accepted_work_then_stops(self):
        server = CheckServer(ServeConfig(port=0, workers=1))
        server.start_background()
        url = server.url
        job = submit(url, build_payload(SOURCE, SPEC, name="sum.s"))
        assert job["result"]["verdict"] == "certified"
        server.begin_drain()
        server._drain_thread.join(30)
        server.wait_closed(10)
        # Workers exited and the listener is down.
        assert all(not w.is_alive() for w in server.pool.workers)
        with pytest.raises(ServiceError):
            fetch_json(url, "/healthz", timeout_s=2)


class TestSubmitCli:
    def test_submit_safe_exits_zero(self, url, tmp_path, capsys):
        code = tmp_path / "sum.s"
        code.write_text(SOURCE)
        spec = tmp_path / "sum.policy"
        spec.write_text(SPEC)
        rc = main(["submit", str(code), str(spec), "--server", url])
        assert rc == 0
        assert "SAFE" in capsys.readouterr().out

    def test_submit_unsafe_exits_one(self, url, tmp_path, capsys):
        code = tmp_path / "buggy.s"
        code.write_text(BUGGY)
        spec = tmp_path / "sum.policy"
        spec.write_text(SPEC)
        rc = main(["submit", str(code), str(spec), "--server", url])
        assert rc == 1
        assert "VIOLATION" in capsys.readouterr().out

    def test_submit_timeout_exits_three(self, url, tmp_path, capsys):
        code = tmp_path / "sum.s"
        code.write_text(SOURCE)
        spec = tmp_path / "sum.policy"
        spec.write_text(SPEC)
        rc = main(["submit", str(code), str(spec), "--server", url,
                   "--timeout", "0.000000001"])
        assert rc == 3
        assert "UNDECIDED" in capsys.readouterr().out

    def test_submit_bad_spec_exits_two(self, url, tmp_path, capsys):
        code = tmp_path / "sum.s"
        code.write_text(SOURCE)
        spec = tmp_path / "bad.policy"
        spec.write_text("frobnicate")
        rc = main(["submit", str(code), str(spec), "--server", url])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_submit_unreachable_server_exits_two(self, tmp_path,
                                                 capsys):
        code = tmp_path / "sum.s"
        code.write_text(SOURCE)
        spec = tmp_path / "sum.policy"
        spec.write_text(SPEC)
        rc = main(["submit", str(code), str(spec), "--server",
                   "http://127.0.0.1:1"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err
