"""Unit tests for the service scheduler: dedup, backpressure, LRU
verdict cache, and drain — no HTTP, no worker threads (the test plays
the worker by calling next_job/finish directly)."""

import pytest

from repro.analysis.options import CheckerOptions
from repro.service.metrics import ServiceMetrics
from repro.service.scheduler import (
    CheckRequest, QueueFull, Scheduler, ServiceUnavailable,
    options_digest,
)

CODE = "1: retl\n2: nop\n"
SPEC = "rule [V : int : ro]\n"


def request(code=CODE, spec=SPEC, **kwargs):
    return CheckRequest.build(code=code, spec=spec, **kwargs)


def scheduler(**kwargs):
    kwargs.setdefault("metrics", ServiceMetrics())
    return Scheduler(**kwargs)


class TestDigests:
    def test_identical_requests_share_a_key(self):
        assert request().key == request().key

    def test_code_spec_and_options_all_enter_the_key(self):
        base = request()
        assert request(code=CODE + "3: nop\n").key != base.key
        assert request(spec=SPEC + "assume n = 1\n").key != base.key
        timed = request(options=CheckerOptions(timeout_s=1.0))
        assert timed.key != base.key

    def test_jobs_and_cache_do_not_change_the_key(self):
        # Parallel discharge and the persistent cache are verdict-
        # preserving, so they must dedup onto the same key.
        base = request()
        assert request(options=CheckerOptions(jobs=4)).key == base.key
        assert request(
            options=CheckerOptions(cache_path="/tmp/x.sqlite")
        ).key == base.key

    def test_options_digest_is_process_stable(self):
        # Fixed expectation: a digest change means the dedup key
        # definition changed and cached verdicts silently invalidate.
        digest = options_digest(CheckerOptions())
        assert digest == options_digest(CheckerOptions())
        assert len(digest) == 64


class TestDedup:
    def test_verdict_cache_answers_resubmission(self):
        s = scheduler()
        job = s.submit(request())
        worker_job = s.next_job()
        assert worker_job is job
        s.finish(job, result={"verdict": "certified", "safe": True})
        again = s.submit(request())
        assert again.terminal
        assert again.dedup == "verdict-cache"
        assert again.result["verdict"] == "certified"
        assert again.id != job.id  # a fresh job record, instant answer
        assert s.queue_depth == 0  # the pipeline never re-ran

    def test_inflight_requests_coalesce(self):
        s = scheduler()
        first = s.submit(request())
        second = s.submit(request())
        assert second is first
        assert first.dedup == "in-flight"

    def test_timeout_verdicts_are_not_cached(self):
        s = scheduler()
        job = s.submit(request())
        s.next_job()
        s.finish(job, result={"verdict": "undecided:timeout",
                              "safe": False, "timed_out": True})
        again = s.submit(request())
        assert not again.terminal  # re-enqueued, not answered

    def test_failed_jobs_are_not_cached(self):
        s = scheduler()
        job = s.submit(request())
        s.next_job()
        s.finish(job, error="boom")
        assert job.state == "failed"
        assert not s.submit(request()).terminal

    def test_lru_eviction(self):
        s = scheduler(verdict_cache_size=1)
        for code in (CODE, CODE + "3: nop\n"):
            job = s.submit(request(code=code))
            s.next_job()
            s.finish(job, result={"verdict": "certified", "safe": True})
        # The first verdict was evicted by the second.
        assert not s.submit(request()).terminal


class TestBackpressure:
    def test_queue_full_raises_with_retry_hint(self):
        s = scheduler(queue_limit=1)
        s.submit(request())
        with pytest.raises(QueueFull) as exc:
            s.submit(request(code=CODE + "3: nop\n"))
        assert exc.value.retry_after_s >= 1.0

    def test_dedup_bypasses_the_full_queue(self):
        s = scheduler(queue_limit=1)
        first = s.submit(request())
        assert s.submit(request()) is first  # coalesces, no 429


class TestDrain:
    def test_drain_rejects_new_and_hands_out_queued(self):
        s = scheduler()
        job = s.submit(request())
        s.drain()
        with pytest.raises(ServiceUnavailable):
            s.submit(request(code=CODE + "3: nop\n"))
        assert s.next_job() is job      # accepted work still runs
        s.finish(job, result={"verdict": "certified", "safe": True})
        assert s.next_job() is None     # then workers are released


class TestMetrics:
    def test_counters_track_the_lifecycle(self):
        m = ServiceMetrics()
        s = scheduler(metrics=m)
        job = s.submit(request())
        s.next_job()
        s.finish(job, result={"verdict": "certified", "safe": True,
                              "times": {"total": 0.5},
                              "prover": {"satisfiability_queries": 10,
                                         "cache_hits": 4}})
        s.submit(request())
        snap = m.snapshot(queue_depth=s.queue_depth)
        assert snap["counters"]["jobs_accepted"] == 1
        assert snap["counters"]["jobs_certified"] == 1
        assert snap["counters"]["jobs_deduped_cache"] == 1
        assert snap["dedup_hits"] == 1
        assert snap["phase_seconds"]["total"] == pytest.approx(0.5)
        assert snap["prover"]["satisfiability_queries"] == 10
        assert snap["prover"]["cache_hit_rate"] == pytest.approx(0.4)
