"""Multi-shard correctness, against a real pre-forked fleet.

The fleet is started through the CLI in a subprocess (forking from
inside pytest would drag the test runner's state into every shard);
shard-pinned traffic goes through the per-shard control listeners the
fleet publishes in ``/healthz``.
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.request

import pytest

from repro.analysis.checker import check_assembly
from repro.analysis.report import result_to_json, verdict_projection
from repro.programs.sum_array import SOURCE, SPEC
from repro.service.client import build_payload, fetch_json, submit
from repro.service.shards import fork_supported

pytestmark = pytest.mark.skipif(not fork_supported(),
                                reason="sharding requires os.fork")

_REPO = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


def _start_fleet(tmp_dir, shards=2, extra=()):
    """Launch ``repro serve --shards N`` and wait for the listen URL."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(_REPO, "src")
    stderr_path = os.path.join(tmp_dir, "serve.log")
    stderr = open(stderr_path, "w")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--shards", str(shards), "--workers", "1"] + list(extra),
        stderr=stderr, env=env, cwd=tmp_dir)
    url = None
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        with open(stderr_path) as handle:
            for line in handle:
                if line.startswith("repro service listening on "):
                    url = line.split()[4]
                    break
        if url or process.poll() is not None:
            break
        time.sleep(0.1)
    if url is None:
        process.kill()
        raise RuntimeError("fleet did not come up:\n"
                           + open(stderr_path).read())
    # The URL is printed at bind time; wait until /healthz answers
    # with the full shard map before handing the fleet to a test.
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        try:
            health = fetch_json(url, "/healthz", timeout_s=5)
            if health.get("shard_count") == shards:
                return process, url, stderr
        except Exception:
            pass
        time.sleep(0.1)
    process.kill()
    raise RuntimeError("fleet never became healthy")


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    tmp_dir = str(tmp_path_factory.mktemp("fleet"))
    process, url, stderr = _start_fleet(tmp_dir)
    yield url
    process.send_signal(signal.SIGTERM)
    try:
        process.wait(60)
    finally:
        if process.poll() is None:
            process.kill()
        stderr.close()


def shard_controls(url):
    """shard label -> control URL, from the aggregated health doc."""
    health = fetch_json(url, "/healthz")
    return {label: doc["control_url"]
            for label, doc in health["shards"].items()}


def projected(payload):
    return json.dumps(verdict_projection(payload), indent=2)


class TestShardParity:
    def test_same_program_identical_json_on_every_shard(self, fleet):
        """The same request pinned to each shard in turn produces a
        verdict payload byte-identical across shards and to the local
        ``repro check --json``."""
        local = projected(result_to_json(
            check_assembly(SOURCE, SPEC, name="sum.s")))
        controls = shard_controls(fleet)
        assert len(controls) == 2
        for label, control in sorted(controls.items()):
            job = submit(control, build_payload(SOURCE, SPEC,
                                                name="sum.s"))
            assert job["state"] == "completed", label
            assert job["id"].startswith("s%s-" % label)
            assert projected(job["result"]) == local, label

    def test_cross_shard_job_lookup(self, fleet):
        """A job id minted by one shard resolves on the public port
        no matter which shard accepts the connection."""
        controls = shard_controls(fleet)
        job = submit(controls["1"], build_payload(
            SOURCE, SPEC, name="sum.s",
            timeout_s=77.0))  # unique options: a fresh job on shard 1
        assert job["id"].startswith("s1-")
        for _ in range(8):  # both shards will take some of these
            envelope = fetch_json(fleet, "/v1/jobs/%s" % job["id"])
            assert envelope["id"] == job["id"]
            assert envelope["state"] == "completed"


class TestFleetObservability:
    def test_metrics_aggregate_and_per_shard(self, fleet):
        metrics = fetch_json(fleet, "/metrics")
        assert metrics["shard_count"] == 2
        assert set(metrics["shards"]) == {"0", "1"}
        summed = sum(doc["counters"]["jobs_accepted"]
                     for doc in metrics["shards"].values())
        assert metrics["counters"]["jobs_accepted"] == summed
        local = fetch_json(fleet, "/metrics?scope=local")
        assert "shards" not in local
        assert local["shard"] in (0, 1)

    def test_prometheus_shard_labels(self, fleet):
        with urllib.request.urlopen(
                fleet + "/metrics?format=prometheus",
                timeout=20) as response:
            text = response.read().decode()
        for label in ("0", "1"):
            assert 'repro_jobs_accepted_total{shard="%s"}' % label \
                in text
            assert 'repro_queue_depth{shard="%s"}' % label in text
        assert 'repro_phase_seconds_total{phase="total"}' in text


class TestDrainUnderLoad:
    def test_no_accepted_job_is_lost(self, tmp_path):
        """Every job accepted before SIGTERM still runs to completion
        during the drain: its per-job trace file exists after the
        fleet has exited cleanly."""
        trace_dir = str(tmp_path / "traces")
        os.makedirs(trace_dir)
        process, url, stderr = _start_fleet(
            str(tmp_path), extra=["--trace-dir", trace_dir])
        accepted = []
        try:
            controls = shard_controls(url)
            for index in range(12):
                control = controls[str(index % 2)]
                # Unique timeout => unique dedup key => a real
                # verification per submission, pinned round-robin.
                payload = build_payload(SOURCE, SPEC, name="sum.s",
                                        timeout_s=1000.0 + index,
                                        wait=False)
                body = json.dumps(payload).encode()
                request = urllib.request.Request(
                    control + "/v1/check", data=body,
                    headers={"Content-Type": "application/json"})
                with urllib.request.urlopen(request, timeout=30) \
                        as response:
                    envelope = json.loads(response.read())
                assert envelope["state"] in ("queued", "running",
                                             "completed")
                accepted.append(envelope["id"])
        finally:
            process.send_signal(signal.SIGTERM)
            code = process.wait(120)
            stderr.close()
        assert code == 0  # clean fleet drain
        traced = set(os.listdir(trace_dir))
        missing = [job_id for job_id in accepted
                   if "%s.jsonl" % job_id not in traced]
        assert not missing, "jobs lost in drain: %s" % missing
