"""Service-level observability: per-job traces behind ``--trace-dir``
(trace_id echoed in the job envelope) and the Prometheus text
exposition of ``/metrics``."""

import os
import urllib.request

import pytest

from repro.programs.sum_array import SOURCE, SPEC
from repro.service.client import build_payload, fetch_json, submit
from repro.service.metrics import ServiceMetrics, render_prometheus
from repro.service.server import CheckServer, ServeConfig
from repro.trace import load_trace


@pytest.fixture(scope="module")
def trace_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("traces"))


@pytest.fixture(scope="module")
def server(trace_dir):
    server = CheckServer(ServeConfig(port=0, workers=2,
                                     trace_dir=trace_dir))
    server.start_background()
    yield server
    server.close()


@pytest.fixture(scope="module")
def url(server):
    return server.url


def fetch_text(url, path):
    with urllib.request.urlopen(url + path, timeout=10.0) as response:
        return (response.status,
                response.headers.get("Content-Type", ""),
                response.read().decode("utf-8"))


class TestJobTraces:
    def test_trace_id_round_trip_and_file(self, url, trace_dir):
        job = submit(url, build_payload(SOURCE, SPEC, name="sum.s"))
        assert job["state"] == "completed"
        assert job["trace_id"] == job["id"]
        # The same id comes back on a later status poll.
        polled = fetch_json(url, "/v1/jobs/%s" % job["id"])
        assert polled["trace_id"] == job["trace_id"]
        # ... and names a schema-valid trace of the whole check.
        path = os.path.join(trace_dir, "%s.jsonl" % job["trace_id"])
        records = load_trace(path)
        assert all(r["trace_id"] == job["trace_id"] for r in records)
        roots = [r for r in records if r.get("parent_id") is None
                 and r["type"] == "span"]
        assert [r["name"] for r in roots] == ["check"]
        assert roots[0]["attrs"]["verdict"] \
            == job["result"]["verdict"] == "certified"

    def test_dedup_hits_carry_no_trace(self, url):
        # Unique options so the first submission cannot dedup onto
        # jobs from other tests; the second one then hits the cache.
        payload = build_payload(SOURCE, SPEC, name="dup.s")
        payload["options"] = {"timeout_s": 321.0}
        first = submit(url, payload)
        again = submit(url, payload)
        assert first["trace_id"]
        assert again["dedup"] == "verdict-cache"
        # No checker ran, so no trace was captured for this job.
        assert "trace_id" not in again

    def test_verdict_identical_with_tracing(self, url):
        """The traced service verdict matches a local untraced check."""
        from repro.analysis.checker import check_assembly
        from repro.analysis.report import result_to_json, \
            verdict_projection
        job = submit(url, build_payload(SOURCE, SPEC, name="sum.s"))
        local = result_to_json(check_assembly(SOURCE, SPEC,
                                              name="sum.s"))
        assert verdict_projection(job["result"]) \
            == verdict_projection(local)


class TestPrometheusEndpoint:
    def test_text_exposition(self, url):
        # Prime the counters with one completed job.
        submit(url, build_payload(SOURCE, SPEC, name="sum.s"))
        status, content_type, body = fetch_text(
            url, "/metrics?format=prometheus")
        assert status == 200
        assert content_type.startswith("text/plain")
        assert "version=0.0.4" in content_type
        assert body.endswith("\n")
        for needle in ("# HELP repro_uptime_seconds",
                       "# TYPE repro_uptime_seconds gauge",
                       "repro_jobs_completed_total",
                       "repro_queue_depth",
                       "repro_prover_cache_hit_rate"):
            assert needle in body
        # Every sample line is NAME VALUE (optionally with labels).
        for line in body.splitlines():
            if line.startswith("#"):
                continue
            name, value = line.rsplit(" ", 1)
            assert name.startswith("repro_")
            float(value)  # parses

    def test_json_default_unchanged(self, url):
        metrics = fetch_json(url, "/metrics")
        assert "counters" in metrics
        assert metrics["prover"]["cache_hit_rate"] >= 0.0
        explicit = fetch_json(url, "/metrics?format=json")
        assert set(explicit) == set(metrics)

    def test_unknown_format_400(self, url):
        with pytest.raises(Exception) as exc:
            fetch_text(url, "/metrics?format=xml")
        assert "400" in str(exc.value)


class TestRendererUnit:
    def test_idle_snapshot_renders(self):
        snapshot = ServiceMetrics().snapshot(
            queue_depth=3, extra={"draining": True})
        body = render_prometheus(snapshot)
        assert "repro_queue_depth 3" in body
        assert "repro_draining 1" in body
        assert "repro_prover_cache_hit_rate 0.0" in body

    def test_phase_seconds_labelled(self):
        metrics = ServiceMetrics()
        metrics.observe_result({
            "verdict": "certified", "timed_out": False,
            "times": {"propagation": 0.5},
            "prover": {"satisfiability_queries": 4},
        })
        body = render_prometheus(metrics.snapshot())
        assert 'repro_phase_seconds_total{phase="propagation"} 0.5' \
            in body
        assert "repro_prover_satisfiability_queries_total 4" in body

    def test_idle_unit_hit_rate_zero(self):
        snapshot = ServiceMetrics().snapshot()
        assert snapshot["prover"]["unit_hit_rate"] == 0.0
        assert "repro_prover_unit_hit_rate 0.0" \
            in render_prometheus(snapshot)

    def test_unit_counters_aggregate_across_jobs(self):
        """Function-unit replay counters from each job's prover stats
        sum into the service totals and surface both as JSON and as
        Prometheus counters."""
        metrics = ServiceMetrics()
        for hits, misses, replayed in ((2, 1, 15), (3, 0, 25)):
            metrics.observe_result({
                "verdict": "certified", "timed_out": False,
                "times": {},
                "prover": {"unit_lookups": hits + misses,
                           "unit_hits": hits,
                           "unit_misses": misses,
                           "unit_replayed_obligations": replayed,
                           "unit_stores": misses,
                           "unit_aborts": 0},
            })
        snapshot = metrics.snapshot()
        prover = snapshot["prover"]
        assert prover["unit_lookups"] == 6
        assert prover["unit_hits"] == 5
        assert prover["unit_replayed_obligations"] == 40
        assert prover["unit_hit_rate"] == pytest.approx(5 / 6)
        body = render_prometheus(snapshot)
        assert "repro_prover_unit_hits_total 5" in body
        assert "repro_prover_unit_lookups_total 6" in body
        assert "repro_prover_unit_replayed_obligations_total 40" \
            in body
        assert "repro_prover_unit_hit_rate" in body
