"""Service verdict parity: a verdict obtained through `repro serve` /
`repro submit` must be byte-identical to `repro check --json` for the
same inputs, on both architectures.

"Byte-identical" is asserted on the deterministic projection of the
payload (:func:`repro.analysis.report.verdict_projection`): the
``times`` and ``prover`` entries are wall-clock- and cache-state-
dependent by nature, everything else must match byte for byte.

The tier-1 tests cover the paper's Sum example on both frontends; the
bench-marked test sweeps the full Figure-9 suite.
"""

import json

import pytest

from repro.analysis.checker import SafetyChecker, check_assembly
from repro.analysis.report import result_to_json, verdict_projection
from repro.service.client import build_payload, submit
from repro.service.server import CheckServer, ServeConfig
from tests.ir.test_parity import TestLoopParity as _RV

RISCV_SUM = _RV.RISCV_SUM
RISCV_SUM_SPEC = _RV.RISCV_SUM_SPEC


@pytest.fixture(scope="module")
def url():
    server = CheckServer(ServeConfig(port=0, workers=2))
    server.start_background()
    yield server.url
    server.close()


def projected(payload):
    return json.dumps(verdict_projection(payload), indent=2)


def assert_parity(url, source, spec, arch, name):
    local = result_to_json(
        check_assembly(source, spec, name=name, arch=arch))
    job = submit(url, build_payload(source, spec, arch=arch, name=name))
    assert job["state"] == "completed"
    assert projected(job["result"]) == projected(local)
    return job["result"]


class TestSumParity:
    def test_sparc(self, url):
        from repro.programs.sum_array import SOURCE, SPEC
        result = assert_parity(url, SOURCE, SPEC, "sparc", "sum.s")
        assert result["verdict"] == "certified"

    def test_riscv(self, url):
        result = assert_parity(url, RISCV_SUM, RISCV_SUM_SPEC,
                               "riscv", "sum-riscv.s")
        assert result["verdict"] == "certified"
        assert result["arch"] == "riscv"

    def test_sparc_unsafe(self, url):
        from repro.programs.sum_array import SOURCE, SPEC
        result = assert_parity(url, SOURCE.replace("bl 6", "ble 6"),
                               SPEC, "sparc", "buggy.s")
        assert result["verdict"] == "rejected"


@pytest.mark.bench
class TestFigure9Parity:
    """The acceptance sweep: every Figure-9 program through the
    service matches the local checker byte for byte."""

    def test_full_suite(self, url):
        from repro.programs import all_programs
        for program in all_programs():
            local = result_to_json(SafetyChecker(
                program.program(), program.spec(),
                name=program.name).check())
            job = submit(url, build_payload(
                program.source, program.spec_text, arch="sparc",
                name=program.name), total_timeout_s=1800)
            assert job["state"] == "completed", program.name
            assert projected(job["result"]) == projected(local), \
                program.name
