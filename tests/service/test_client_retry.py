"""Client-side handling of scheduler backpressure: 429 responses are
retried with bounded exponential backoff + jitter, honoring the
server's ``Retry-After`` hint (``repro submit --retries``)."""

import json
import random
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.programs.sum_array import SOURCE, SPEC
from repro.service.client import (
    RETRY_CAP_S, ServiceError, backoff_delay, build_payload, submit,
    submit_batch,
)
from repro.service.server import CheckServer, ServeConfig


class TestBackoffDelay:
    def test_exponential_envelope_with_jitter(self):
        rng = random.Random(7)
        for attempt in range(6):
            delay = backoff_delay(attempt, rng=rng)
            ceiling = 0.25 * (2.0 ** attempt)
            assert 0.5 * ceiling <= delay <= ceiling

    def test_server_hint_is_a_floor(self):
        rng = random.Random(7)
        delay = backoff_delay(0, retry_after_s=5.0, rng=rng)
        # Jitter applies to the hinted value, never dips below half.
        assert 2.5 <= delay <= 5.0

    def test_cap(self):
        rng = random.Random(7)
        assert backoff_delay(50, rng=rng) <= RETRY_CAP_S
        assert backoff_delay(0, retry_after_s=10 * RETRY_CAP_S,
                             rng=rng) <= RETRY_CAP_S


class _FlakyQueue(BaseHTTPRequestHandler):
    """Answers 429 + Retry-After for the first N POSTs, then a
    completed job envelope — deterministic backpressure."""

    rejections = 2
    seen = 0

    def do_POST(self):
        cls = type(self)
        self.rfile.read(int(self.headers.get("Content-Length") or 0))
        cls.seen += 1
        if cls.seen <= cls.rejections:
            body = json.dumps({"error": "job queue is full",
                               "retry_after_s": 2.0}).encode()
            self.send_response(429)
            self.send_header("Retry-After", "2")
        else:
            body = json.dumps({
                "id": "j000001-abc", "state": "completed",
                "dedup": None,
                "result": {"verdict": "certified", "safe": True},
            }).encode()
            self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args):
        pass


@pytest.fixture
def flaky_url():
    _FlakyQueue.seen = 0
    _FlakyQueue.rejections = 2
    httpd = ThreadingHTTPServer(("127.0.0.1", 0), _FlakyQueue)
    httpd.daemon_threads = True
    thread = threading.Thread(target=httpd.serve_forever,
                              kwargs={"poll_interval": 0.1},
                              daemon=True)
    thread.start()
    yield "http://127.0.0.1:%d" % httpd.server_address[1]
    httpd.shutdown()
    httpd.server_close()


class TestSubmitRetries:
    def test_retries_until_accepted(self, flaky_url):
        sleeps = []
        job = submit(flaky_url, build_payload(SOURCE, SPEC),
                     retries=4, sleep=sleeps.append)
        assert job["state"] == "completed"
        assert len(sleeps) == 2
        # Both delays honored the server's 2s Retry-After floor
        # (jittered down to at most half).
        assert all(1.0 <= delay <= RETRY_CAP_S for delay in sleeps)

    def test_no_retries_fails_immediately(self, flaky_url):
        with pytest.raises(ServiceError) as exc:
            submit(flaky_url, build_payload(SOURCE, SPEC),
                   retries=0, sleep=lambda s: None)
        assert exc.value.status == 429
        assert _FlakyQueue.seen == 1

    def test_retry_budget_exhausted_raises_429(self, flaky_url):
        _FlakyQueue.rejections = 100
        with pytest.raises(ServiceError) as exc:
            submit(flaky_url, build_payload(SOURCE, SPEC),
                   retries=3, sleep=lambda s: None)
        assert exc.value.status == 429
        assert _FlakyQueue.seen == 4  # initial try + 3 retries

    def test_deadline_caps_the_backoff(self, flaky_url):
        _FlakyQueue.rejections = 100
        with pytest.raises(ServiceError) as exc:
            submit(flaky_url, build_payload(SOURCE, SPEC),
                   retries=100, total_timeout_s=0.5,
                   sleep=lambda s: None)
        assert exc.value.status == 429
        assert "gave up" in str(exc.value)

    def test_batch_retries_whole_request(self, flaky_url):
        sleeps = []
        doc = submit_batch(flaky_url,
                           [build_payload(SOURCE, SPEC)],
                           retries=4, sleep=sleeps.append)
        assert doc["state"] == "completed"  # fake envelope passthrough
        assert len(sleeps) == 2


class TestSchedulerBackpressure:
    """Against a real server whose queue can only reject: the
    scheduler's 429 + Retry-After round-trips through the client
    retry loop."""

    def test_429_retry_after_reaches_backoff(self):
        server = CheckServer(ServeConfig(port=0, workers=1,
                                         queue_limit=0))
        # Workers never started: every fresh submission is rejected.
        thread = threading.Thread(target=server.httpd.serve_forever,
                                  kwargs={"poll_interval": 0.1},
                                  daemon=True)
        server.httpd.daemon_threads = True
        thread.start()
        try:
            sleeps = []
            with pytest.raises(ServiceError) as exc:
                submit(server.url,
                       build_payload(SOURCE, SPEC, wait=False),
                       retries=2, sleep=sleeps.append)
            assert exc.value.status == 429
            assert len(sleeps) == 2
            # The scheduler's Retry-After hint (>= 1s) floors both
            # delays; jitter may halve it.
            assert all(delay >= 0.5 for delay in sleeps)
            from repro.service.client import fetch_json
            metrics = fetch_json(server.url, "/metrics")
            assert metrics["counters"]["rejected_queue_full"] == 3
        finally:
            server.httpd.shutdown()
            server.httpd.server_close()
