"""``POST /v1/batch``: many check requests in one round trip, with
cross-batch dedup — duplicate digests consume one verification — and
per-item results byte-identical to single submissions."""

import json

import pytest

from repro.analysis.checker import check_assembly
from repro.analysis.report import result_to_json, verdict_projection
from repro.programs.sum_array import SOURCE, SPEC
from repro.service.client import (
    build_payload, fetch_json, submit, submit_batch,
)
from repro.service.server import CheckServer, ServeConfig

BUGGY = SOURCE.replace("bl 6", "ble 6")


@pytest.fixture()
def server():
    server = CheckServer(ServeConfig(port=0, workers=2,
                                     batch_limit=8))
    server.start_background()
    yield server
    server.close()


@pytest.fixture()
def url(server):
    return server.url


def item(code=SOURCE, spec=SPEC, **kwargs):
    payload = build_payload(code, spec, **kwargs)
    payload.pop("wait", None)  # wait is batch-level, not per item
    return payload


def projected(payload):
    return json.dumps(verdict_projection(payload), indent=2)


class TestDedup:
    def test_all_duplicates_consume_one_verification(self, url):
        doc = submit_batch(url, [item(), item(), item(), item()])
        assert doc["accepted"] == 1
        assert doc["deduped"] == 3
        assert doc["rejected"] == 0
        jobs = [entry["job"] for entry in doc["items"]]
        assert len({job["id"] for job in jobs}) == 1
        assert all(job["state"] == "completed" for job in jobs)
        metrics = fetch_json(url, "/metrics")
        assert metrics["counters"]["jobs_accepted"] == 1
        assert metrics["counters"]["batch_requests"] == 1
        assert metrics["counters"]["batch_items"] == 4

    def test_dedup_against_earlier_traffic(self, url):
        submit(url, build_payload(SOURCE, SPEC))
        doc = submit_batch(url, [item()])
        assert doc["accepted"] == 0
        assert doc["deduped"] == 1
        assert doc["items"][0]["job"]["dedup"] == "verdict-cache"

    def test_mixed_fresh_and_duplicate(self, url):
        doc = submit_batch(url, [item(), item(BUGGY), item()])
        assert doc["accepted"] == 2
        assert doc["deduped"] == 1
        verdicts = [entry["job"]["result"]["verdict"]
                    for entry in doc["items"]]
        assert verdicts == ["certified", "rejected", "certified"]


class TestPerItemStatus:
    def test_bad_item_rejected_inline_order_preserved(self, url):
        doc = submit_batch(url, [item(), {"code": SOURCE},
                                 item(BUGGY)])
        statuses = [entry["status"] for entry in doc["items"]]
        assert statuses == [200, 400, 200]
        assert doc["rejected"] == 1
        assert "spec" in doc["items"][1]["error"]
        assert doc["items"][2]["job"]["result"]["verdict"] == "rejected"

    def test_empty_batch_is_400(self, url):
        import urllib.error
        import urllib.request
        body = json.dumps({"items": []}).encode()
        request = urllib.request.Request(
            url + "/v1/batch", data=body,
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(request, timeout=10)
        assert exc.value.code == 400

    def test_oversized_batch_is_400(self, url):
        import urllib.error
        import urllib.request
        body = json.dumps({"items": [item()] * 9}).encode()
        request = urllib.request.Request(
            url + "/v1/batch", data=body,
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(request, timeout=10)
        assert exc.value.code == 400
        assert b"too many" in exc.value.read()


class TestParity:
    def test_batch_results_byte_identical_to_local_check(self, url):
        local_safe = projected(result_to_json(
            check_assembly(SOURCE, SPEC, name="sum.s")))
        local_buggy = projected(result_to_json(
            check_assembly(BUGGY, SPEC, name="buggy.s")))
        doc = submit_batch(url, [item(name="sum.s"),
                                 item(BUGGY, name="buggy.s")])
        results = [entry["job"]["result"] for entry in doc["items"]]
        assert projected(results[0]) == local_safe
        assert projected(results[1]) == local_buggy
