"""Specification-language tests: locations, rules, invocation,
constraints, trusted functions, type definitions."""

import pytest

from repro.errors import SpecError
from repro.logic.formula import And, Cong, Geq, Or, TRUE
from repro.policy import parse_constraint, parse_spec
from repro.policy.model import (
    HostSpec, LocationDecl, TypeEnvironment, parse_state, split_perms,
)
from repro.typesys.state import INIT, PointsTo, UNINIT
from repro.typesys.types import (
    ArrayBaseType, ArrayMidType, INT32, PointerType, StructType, UINT8,
)


class TestConstraintParser:
    def test_relations(self):
        assert str(parse_constraint("n >= 1")) == "n-1 >= 0"
        assert isinstance(parse_constraint("x < y"), Geq)
        assert isinstance(parse_constraint("x != y"), Or)

    def test_equality_forms(self):
        a = parse_constraint("n = %o1")
        b = parse_constraint("n == %o1")
        assert a == b

    def test_coefficients_and_sums(self):
        f = parse_constraint("4 n > %g2 + 1")
        assert isinstance(f, Geq)
        assert f.term.coefficient("n") == 4
        assert f.term.coefficient("%g2") == -1

    def test_explicit_multiplication(self):
        assert parse_constraint("2 * x >= 0").term.coefficient("x") == 2

    def test_mod_produces_congruence(self):
        f = parse_constraint("%g2 mod 4 = 0")
        assert isinstance(f, Cong) and f.modulus == 4

    def test_mod_with_residue(self):
        f = parse_constraint("x mod 4 = 3")
        assert isinstance(f, Cong)
        assert f.term.constant == -3

    def test_null_is_zero(self):
        f = parse_constraint("%o0 != null")
        assert "%o0" in f.free_variables()

    def test_and_or_precedence(self):
        f = parse_constraint("a >= 0 and b >= 0 or c >= 0")
        assert isinstance(f, Or)  # 'and' binds tighter

    def test_parentheses(self):
        f = parse_constraint("a >= 0 and (b >= 0 or c >= 0)")
        assert isinstance(f, And)

    def test_garbage_rejected(self):
        with pytest.raises(SpecError):
            parse_constraint("n >=")
        with pytest.raises(SpecError):
            parse_constraint("n ? 3")


class TestTypeExpressions:
    def setup_method(self):
        self.types = TypeEnvironment()

    def test_ground(self):
        assert self.types.parse("int") is INT32
        assert self.types.parse("uint8") is UINT8

    def test_array_base_and_mid(self):
        base = self.types.parse("int[n]")
        assert isinstance(base, ArrayBaseType) and base.size == "n"
        mid = self.types.parse("int(64]")
        assert isinstance(mid, ArrayMidType) and mid.size == 64

    def test_pointer_suffix(self):
        t = self.types.parse("int ptr")
        assert isinstance(t, PointerType)

    def test_stacked_suffixes(self):
        t = self.types.parse("int ptr ptr")
        assert isinstance(t.pointee, PointerType)

    def test_named_struct(self):
        self.types.define_struct("pair", [("a", "int"), ("b", "int")])
        t = self.types.parse("pair ptr")
        assert isinstance(t.pointee, StructType)

    def test_unknown_type_rejected(self):
        with pytest.raises(SpecError):
            self.types.parse("wibble")

    def test_struct_offsets_respect_alignment(self):
        struct = self.types.define_struct(
            "mixed", [("flag", "uint8"), ("word", "int")])
        assert struct.member("flag").offset == 0
        assert struct.member("word").offset == 4


class TestSpecParsing:
    FIG1 = """
    loc e   : int    = initialized  perms ro  region V summary
    loc arr : int[n] = {e}          perms rfo region V
    rule [V : int : ro]
    rule [V : int[n] : rfo]
    invoke %o0 = arr
    invoke %o1 = n
    assume n >= 1
    """

    def test_figure1_roundtrip(self):
        spec = parse_spec(self.FIG1)
        assert [d.name for d in spec.locations] == ["e", "arr"]
        e = spec.location("e")
        assert e.summary and e.region == "V"
        arr_type = spec.resolve_type(spec.location("arr"))
        assert isinstance(arr_type, ArrayBaseType)
        assert spec.resolve_state(spec.location("arr")) == \
            PointsTo(frozenset({"e"}))
        assert spec.invocation.bindings == {"%o0": "arr", "%o1": "n"}
        assert len(spec.constraints) == 1

    def test_struct_and_field_rules(self):
        spec = parse_spec("""
        type thread = struct { tid: int; lwpid: int; next: thread ptr }
        loc t : thread perms r region H summary
        rule [H : thread.tid, thread.lwpid : ro]
        rule [H : thread.next : rfo]
        """)
        thread = spec.types.lookup("thread")
        assert [m.label for m in thread.members] == ["tid", "lwpid",
                                                     "next"]
        assert len(spec.rules) == 2
        assert spec.rules[0].categories == ("thread.tid", "thread.lwpid")

    def test_trusted_function_block(self):
        spec = parse_spec("""
        function getTime {
            returns %o0 : int = initialized perms o
            clobbers %g1 %g2
        }
        function log {
            param %o0 : int = initialized perms o
            requires %o0 >= 0
        }
        """)
        get_time = spec.functions["getTime"]
        assert get_time.returns["%o0"].state == INIT
        assert get_time.clobbers == ("%g1", "%g2")
        log = spec.functions["log"]
        assert log.precondition is not TRUE
        assert "%o0" in log.params

    def test_postcondition_accumulates(self):
        spec = parse_spec("ensure n >= 1\nensure n <= 10")
        assert isinstance(spec.postcondition, And)

    def test_duplicate_location_rejected(self):
        with pytest.raises(SpecError):
            parse_spec("loc a : int\nloc a : int")

    def test_unknown_directive_rejected(self):
        with pytest.raises(SpecError):
            parse_spec("frobnicate everything")

    def test_unterminated_function_rejected(self):
        with pytest.raises(SpecError):
            parse_spec("function f {\nparam %o0 : int")

    def test_comments_ignored(self):
        spec = parse_spec("# comment\nloc a : int  # trailing\n")
        assert spec.location("a")

    def test_abstract_type(self):
        spec = parse_spec("abstract jnienv size 4\n"
                          "loc env : jnienv ptr perms rfo region J")
        assert spec.types.lookup("jnienv").size == 4


class TestHelpers:
    def test_split_perms(self):
        readable, writable, value = split_perms("rwfo")
        assert readable and writable
        assert value.followable and value.operable and not value.executable

    def test_split_perms_rejects_garbage(self):
        with pytest.raises(SpecError):
            split_perms("rz")

    def test_parse_state_forms(self):
        assert parse_state("initialized") == INIT
        assert parse_state("uninitialized") == UNINIT
        assert parse_state("{a, null}") == PointsTo(
            frozenset({"a", "null"}))
        with pytest.raises(SpecError):
            parse_state("{}")
        with pytest.raises(SpecError):
            parse_state("bogus")
