"""Concrete RV32I emulator tests: ALU semantics, branches, memory
(little-endian), x0 hard-wiring, linkage, and the strict-region
protocol's precise out-of-bounds errors."""

import pytest

from repro.errors import EmulationError, RegionViolation
from repro.riscv.assembler import assemble
from repro.riscv.emulator import CODE_BASE, EXIT_ADDRESS, Emulator


def run(source, setup=None, host=None, max_steps=100000):
    program = assemble(source)
    emulator = Emulator(program, host_functions=host,
                        max_steps=max_steps)
    if setup:
        setup(emulator)
    emulator.run()
    return emulator


class TestArithmetic:
    def test_add_sub_imm(self):
        emu = run("li a0,30\naddi a0,a0,12\naddi a0,a0,-2\nret")
        assert emu.register_signed("a0") == 40

    def test_reg_reg_ops(self):
        emu = run("li a0,12\nli a1,10\n"
                  "add t0,a0,a1\nsub t1,a0,a1\nand t2,a0,a1\n"
                  "or t3,a0,a1\nxor t4,a0,a1\nret")
        assert emu.register("t0") == 22
        assert emu.register("t1") == 2
        assert emu.register("t2") == 8
        assert emu.register("t3") == 14
        assert emu.register("t4") == 6

    def test_32bit_wraparound(self):
        emu = run("li a0,0x7fffffff\naddi a0,a0,1\nret")
        assert emu.register("a0") == 0x80000000
        assert emu.register_signed("a0") == -(1 << 31)

    def test_shifts(self):
        emu = run("li a0,-8\nsrai a1,a0,1\nsrli a2,a0,1\n"
                  "slli a3,a0,1\nret")
        assert emu.register_signed("a1") == -4
        assert emu.register("a2") == 0x7FFFFFFC
        assert emu.register_signed("a3") == -16

    def test_set_less_than(self):
        emu = run("li a0,-1\nli a1,1\nslt t0,a0,a1\nsltu t1,a0,a1\n"
                  "slti t2,a0,0\nsltiu t3,a0,0\nret")
        assert emu.register("t0") == 1   # signed: -1 < 1
        assert emu.register("t1") == 0   # unsigned: 0xffffffff > 1
        assert emu.register("t2") == 1
        assert emu.register("t3") == 0

    def test_lui(self):
        emu = run("lui a0,0x12345\naddi a0,a0,0x678\nret")
        assert emu.register("a0") == 0x12345678

    def test_x0_hardwired(self):
        emu = run("li t0,7\nadd zero,t0,t0\nadd a0,zero,t0\nret")
        assert emu.register("zero") == 0
        assert emu.register("a0") == 7


class TestBranches:
    def test_signed_vs_unsigned(self):
        emu = run("""
        li a0,-1
        li a1,1
        li a2,0
        blt a0,a1,L1
        li a2,99
L1:
        bltu a0,a1,L2
        addi a2,a2,5
L2:
        ret
        """)
        # blt taken (signed), bltu not taken (0xffffffff > 1).
        assert emu.register("a2") == 5

    def test_loop(self):
        emu = run("""
        li a0,0
        li a1,0
L1:
        li t0,5
        bge a1,t0,L2
        add a0,a0,a1
        addi a1,a1,1
        j L1
L2:
        ret
        """)
        assert emu.register("a0") == 10

    def test_beq_bne(self):
        emu = run("li a0,3\nli a1,3\nli a2,0\n"
                  "bne a0,a1,L1\nli a2,1\nL1:\n"
                  "beq a0,a1,L2\nli a2,2\nL2:\nret")
        assert emu.register("a2") == 1


class TestMemory:
    def test_little_endian_bytes(self):
        def setup(emu):
            emu.set_register("a0", 0x1000)
        emu = run("li t0,0x11223344\nsw t0,0(a0)\nlbu t1,0(a0)\n"
                  "lbu t2,3(a0)\nret", setup=setup)
        assert emu.register("t1") == 0x44   # low byte first
        assert emu.register("t2") == 0x11
        assert emu.read_bytes(0x1000, 4) == b"\x44\x33\x22\x11"

    def test_signed_and_unsigned_loads(self):
        def setup(emu):
            emu.set_register("a0", 0x1000)
            emu.write_memory(0x1000, 0xFF, 1)
            emu.write_memory(0x1002, 0x8001, 2)
        emu = run("lb t0,0(a0)\nlbu t1,0(a0)\nlh t2,2(a0)\n"
                  "lhu t3,2(a0)\nret", setup=setup)
        assert emu.register_signed("t0") == -1
        assert emu.register("t1") == 0xFF
        assert emu.register_signed("t2") == -32767
        assert emu.register("t3") == 0x8001

    def test_store_sizes(self):
        def setup(emu):
            emu.set_register("a0", 0x1000)
        emu = run("li t0,0xAABBCCDD\nsw t0,0(a0)\nsh t0,4(a0)\n"
                  "sb t0,6(a0)\nret", setup=setup)
        assert emu.read_memory(0x1000, 4, signed=False) == 0xAABBCCDD
        assert emu.read_memory(0x1004, 2, signed=False) == 0xCCDD
        assert emu.read_memory(0x1006, 1, signed=False) == 0xDD

    def test_alignment_trap(self):
        def setup(emu):
            emu.set_register("a0", 0x1001)
        with pytest.raises(EmulationError, match="alignment"):
            run("lw t0,0(a0)\nret", setup=setup)


class TestLinkage:
    def test_call_and_return(self):
        emu = run("""
        li a0,5
        mv t0,ra
        jal ra,double
        addi a0,a0,1
        mv ra,t0
        ret
double:
        add a0,a0,a0
        jalr zero,0(ra)
        """)
        assert emu.register("a0") == 11

    def test_top_level_ret_exits(self):
        emu = run("li a0,1\nret")
        assert emu.steps == 2

    def test_max_steps_guard(self):
        with pytest.raises(EmulationError, match="steps"):
            run("j L1\nL1: j L1\nret", max_steps=50)

    def test_host_function_by_label(self):
        calls = []

        def host(emu):
            calls.append(emu.register("a0"))
            emu.set_register("a0", 42)
        emu = run("li a0,7\nmv t1,ra\njal ra,helper\nmv ra,t1\nret\n"
                  "helper:\nret", host={"helper": host})
        assert calls == [7]
        assert emu.register("a0") == 42

    def test_address_index_round_trip(self):
        assert Emulator.index_of(Emulator.address_of(5)) == 5
        assert Emulator.address_of(1) == CODE_BASE


class TestRegions:
    """The strict-region protocol: once a region is registered, every
    program-level access outside it raises a precise violation."""

    def test_permissive_without_regions(self):
        def setup(emu):
            emu.set_register("a0", 0x9999000)
        emu = run("lw t0,0(a0)\nsw t0,4(a0)\nret", setup=setup)
        assert emu.register("t0") == 0

    def test_in_region_access_allowed(self):
        def setup(emu):
            emu.add_region(0x2000, 16, writable=True)
            emu.set_register("a0", 0x2000)
            emu.write_words(0x2000, [11, 22, 33, 44])
        emu = run("lw t0,12(a0)\nsw t0,0(a0)\nret", setup=setup)
        assert emu.register("t0") == 44
        assert emu.read_words(0x2000, 1) == [44]

    @pytest.mark.parametrize("op,offset,size,kind", [
        ("lw t0,16(a0)", 16, 4, "load"),
        ("lh t0,16(a0)", 16, 2, "load"),
        ("lbu t0,16(a0)", 16, 1, "load"),
        ("sw t0,16(a0)", 16, 4, "store"),
        ("sh t0,16(a0)", 16, 2, "store"),
        ("sb t0,16(a0)", 16, 1, "store"),
    ])
    def test_oob_access_raises_precisely(self, op, offset, size, kind):
        def setup(emu):
            emu.add_region(0x2000, 16)
            emu.set_register("a0", 0x2000)
        with pytest.raises(RegionViolation) as info:
            run(op + "\nret", setup=setup)
        violation = info.value
        assert violation.address == 0x2000 + offset
        assert violation.size == size
        assert violation.kind == kind
        assert violation.index == 1
        assert "0x2010" in str(violation)

    def test_straddling_access_rejected(self):
        def setup(emu):
            emu.add_region(0x2000, 6)   # 6 bytes: word at +4 straddles
            emu.set_register("a0", 0x2000)
        with pytest.raises(RegionViolation):
            run("lw t0,4(a0)\nret", setup=setup)

    def test_read_only_region_blocks_stores(self):
        def setup(emu):
            emu.add_region(0x2000, 16, writable=False)
            emu.set_register("a0", 0x2000)
        emu = run("lw t0,0(a0)\nret", setup=setup)   # loads fine
        with pytest.raises(RegionViolation) as info:
            run("sw t0,0(a0)\nret", setup=setup)
        assert info.value.kind == "store"
        assert info.value.address == 0x2000

    def test_memory_check_hook_observes(self):
        seen = []

        def setup(emu):
            emu.add_region(0x2000, 16)
            emu.set_register("a0", 0x2000)
            emu.memory_check = lambda *args: seen.append(args)
        run("lw t0,0(a0)\nsw t0,8(a0)\nret", setup=setup)
        assert seen == [(0x2000, 4, "load", 1),
                        (0x2008, 4, "store", 2)]
