"""Tests for the RV32I frontend: assembler, decoder, lowering, and
end-to-end checking through the architecture-neutral core."""

import pytest

from repro.analysis.checker import SafetyChecker, check_assembly
from repro.errors import AssemblyError, DecodingError
from repro.ir.ops import (
    AddrExpr, Assign, BinOp, Call, CondBranch, ConstOp, IndirectJump,
    Load, Nop, RegOp, SetConst, Store, Unsupported,
)
from repro.policy.parser import parse_spec
from repro.riscv import (
    assemble, decode_instruction, decode_program, lower_instruction,
)
from repro.riscv.registers import canonical


def low(text):
    return lower_instruction(assemble(text).instruction(1))


class TestRegisters:
    def test_abi_names_canonical(self):
        assert canonical("a0") == "a0"
        assert canonical("x10") == "a0"
        assert canonical("fp") == "s0"
        assert canonical("x0") == "zero"

    def test_unknown_register_rejected(self):
        with pytest.raises(KeyError):
            canonical("b7")


class TestAssembler:
    def test_basic_program(self):
        program = assemble("addi a0, zero, 5\nsw zero, 0(a0)\nret")
        assert len(program) == 3
        assert program.instruction(1).op == "addi"
        assert program.instruction(2).imm == 0
        assert program.instruction(3).op == "jalr"

    def test_pseudo_expansion(self):
        assert assemble("nop").instruction(1).op == "addi"
        mv = assemble("mv a1, a0").instruction(1)
        assert (mv.op, mv.rd, mv.rs1, mv.imm) == ("addi", "a1", "a0", 0)
        li = assemble("li t0, -7").instruction(1)
        assert (li.op, li.rs1, li.imm) == ("addi", "zero", -7)
        ret = assemble("ret").instruction(1)
        assert (ret.op, ret.rd, ret.rs1) == ("jalr", "zero", "ra")

    def test_li_wide_constant_expands_to_lui_pair(self):
        program = assemble("li a0, 0x12345")
        assert [i.op for i in program] == ["lui", "addi"]

    def test_labels_and_numeric_targets(self):
        program = assemble("loop: addi t0, t0, 1\nblt t0, a1, loop\n"
                           "beq t0, a1, 1\nret")
        assert program.label_index("loop") == 1
        assert program.instruction(2).target == 1
        assert program.instruction(3).target == 1

    def test_comments_stripped(self):
        program = assemble("addi a0, a0, 1  # comment\n"
                           "addi a0, a0, 1  // comment\nret ; comment")
        assert len(program) == 3

    def test_external_call_target_zero(self):
        inst = assemble("call some_host_fn").instruction(1)
        assert inst.target == 0 and inst.rd == "ra"

    def test_undefined_branch_label_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("beq a0, a1, nowhere")

    def test_out_of_range_immediate_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("addi a0, a0, 5000")


class TestDecoder:
    @pytest.mark.parametrize("word,rendered", [
        (0x00500513, "addi a0,zero,5"),
        (0x00052023, "sw zero,0(a0)"),
        (0x00008067, "jalr zero,0(ra)"),
        (0x00B50533, "add a0,a0,a1"),
    ])
    def test_known_words(self, word, rendered):
        assert decode_instruction(word).render() == rendered

    def test_branch_target_resolution(self):
        # beq a0,a1,+8 at slot 0 → one-based target 3.
        inst = decode_instruction(0x00B50463, position=0)
        assert inst.op == "beq" and inst.target == 3

    def test_jal_target_resolution(self):
        # jal ra,+8 at slot 0 → one-based target 3.
        inst = decode_instruction(0x008000EF, position=0)
        assert inst.op == "jal" and inst.rd == "ra" and inst.target == 3

    def test_program_round_trip(self):
        source = "addi a0, zero, 5\nsw zero, 0(a0)\njalr zero, 0(ra)"
        import struct
        # Hand-assembled words for the same three instructions.
        blob = struct.pack("<3I", 0x00500513, 0x00052023, 0x00008067)
        decoded = decode_program(blob)
        assembled = assemble(source)
        assert [i.render(canonical=True) for i in decoded] \
            == [i.render(canonical=True) for i in assembled]

    def test_bad_word_rejected(self):
        with pytest.raises(DecodingError):
            decode_instruction(0xFFFFFFFF)

    def test_misaligned_image_rejected(self):
        with pytest.raises(DecodingError):
            decode_program(b"\x13\x05\x50")


class TestLowering:
    def test_nop_and_zero_canonicalization(self):
        assert isinstance(low("nop"), Nop)
        op = low("add a0, zero, zero")
        assert isinstance(op, Assign) and op.src1 == ConstOp(0)

    def test_li_is_set_const(self):
        op = low("li a0, 9")
        assert isinstance(op, SetConst)
        assert op.dest == "a0" and op.value == 9

    def test_lui_shifts(self):
        op = low("lui a0, 5")
        assert isinstance(op, SetConst) and op.value == 5 << 12

    def test_mv_is_canonical_move_form(self):
        op = low("mv a1, a0")
        assert isinstance(op, Assign)
        assert op.op is BinOp.OR
        assert op.src1 == ConstOp(0) and op.src2 == RegOp("a0")

    def test_add_through_zero_is_move(self):
        op = low("add a1, zero, a0")
        assert op.op is BinOp.OR and op.src1 == ConstOp(0)

    @pytest.mark.parametrize("text,binop", [
        ("add a0,a1,a2", BinOp.ADD), ("sub a0,a1,a2", BinOp.SUB),
        ("and a0,a1,a2", BinOp.AND), ("or a0,a1,a2", BinOp.OR),
        ("xor a0,a1,a2", BinOp.XOR), ("sll a0,a1,a2", BinOp.SLL),
        ("srl a0,a1,a2", BinOp.SRL), ("sra a0,a1,a2", BinOp.SRA),
        ("addi a0,a1,4", BinOp.ADD), ("andi a0,a1,7", BinOp.AND),
        ("slli a0,a1,2", BinOp.SLL), ("srli a0,a1,2", BinOp.SRL),
    ])
    def test_alu_map(self, text, binop):
        op = low(text)
        assert isinstance(op, Assign) and op.op is binop
        assert not op.sets_cc  # RISC-V has no condition codes

    @pytest.mark.parametrize("text,width,signed,rng", [
        ("lw a0, 0(a1)", 4, True, None),
        ("lb a0, 0(a1)", 1, True, None),
        ("lbu a0, 0(a1)", 1, False, 256),
        ("lh a0, 0(a1)", 2, True, None),
        ("lhu a0, 0(a1)", 2, False, 65536),
    ])
    def test_load_metadata(self, text, width, signed, rng):
        op = low(text)
        assert isinstance(op, Load)
        assert op.width == width and op.signed is signed
        assert op.unsigned_range == rng

    def test_store(self):
        op = low("sw a0, 8(a1)")
        assert isinstance(op, Store)
        assert op.src == RegOp("a0")
        assert op.addr == AddrExpr(base="a1", offset=8)
        assert op.width == 4

    def test_branch_carries_register_operands(self):
        op = low("blt t0, a1, 1")
        assert isinstance(op, CondBranch)
        assert op.relation == "<"
        assert op.lhs == RegOp("t0") and op.rhs == RegOp("a1")
        assert op.delay_slots == 0

    def test_branch_against_zero(self):
        op = low("beqz a0, 1")
        assert op.relation == "==" and op.rhs == ConstOp(0)

    def test_j_is_unconditional(self):
        op = low("j 1")
        assert isinstance(op, CondBranch) and op.unconditional

    def test_call_links_through_ra(self):
        op = low("call f")
        assert isinstance(op, Call)
        assert op.link == "ra" and op.target == 0
        assert op.delay_slots == 0

    def test_ret_is_return(self):
        op = low("ret")
        assert isinstance(op, IndirectJump)
        assert op.base == "ra" and op.is_return and op.link is None

    def test_slt_unsupported(self):
        assert isinstance(low("slt a0, a1, a2"), Unsupported)


RW_SPEC = """
loc e   : int    = initialized  perms rwo  region V summary
loc arr : int[n] = {e}          perms rwfo region V
rule [V : int : rwo]
rule [V : int[n] : rwfo]
invoke a0 = arr
assume n = 10
"""


class TestEndToEnd:
    def test_safe_write(self):
        result = check_assembly("sw zero, 0(a0)\nret", RW_SPEC,
                                name="rv-ok", arch="riscv")
        assert result.safe

    def test_out_of_bounds_write_flagged(self):
        result = check_assembly("sw zero, 40(a0)\nret", RW_SPEC,
                                name="rv-oob", arch="riscv")
        assert not result.safe
        assert any(v.index == 1 and v.category == "array-bounds"
                   for v in result.violations)

    def test_uninitialized_register_flagged(self):
        # t3 starts at ⊥ — using it in arithmetic is an operability
        # violation, exactly as on SPARC.
        result = check_assembly("addi t3, t3, 1\nret", RW_SPEC,
                                name="rv-uninit", arch="riscv")
        assert not result.safe
        assert any(v.category == "uninitialized-value"
                   for v in result.violations)

    def test_checker_accepts_machine_code(self):
        import struct
        # sw zero,0(a0); jalr zero,0(ra)
        blob = struct.pack("<2I", 0x00052023, 0x00008067)
        result = SafetyChecker(blob, parse_spec(RW_SPEC),
                               name="rv-bin", arch="riscv").check()
        assert result.safe

    def test_stack_discipline_enforced(self):
        # sp may only move by 16-byte-aligned constants on RV32I.
        result = check_assembly("addi sp, sp, -8\nret", RW_SPEC,
                                name="rv-sp", arch="riscv")
        assert not result.safe
        assert any(v.category == "stack-manipulation"
                   for v in result.violations)

    def test_aligned_stack_adjustment_passes_discipline(self):
        # A 16-byte-aligned move satisfies the RV32I stack discipline
        # (sp itself still starts uninitialized, as %o6 does on SPARC,
        # so the program is not fully safe — but no *stack* violation).
        result = check_assembly(
            "addi sp, sp, -16\naddi sp, sp, 16\nret", RW_SPEC,
            name="rv-sp-ok", arch="riscv")
        assert not any(v.category == "stack-manipulation"
                       for v in result.violations)
