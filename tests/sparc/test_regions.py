"""Strict-region protocol on the SPARC emulator: without registered
regions behavior is the historical permissive one; with regions, every
program-level load/store outside them (or store into a read-only one)
raises a precise :class:`~repro.errors.RegionViolation`."""

import pytest

from repro.errors import RegionViolation
from repro.sparc import Emulator, assemble


def run(source, setup=None, max_steps=100000):
    emulator = Emulator(assemble(source), max_steps=max_steps)
    if setup:
        setup(emulator)
    emulator.run()
    return emulator


class TestPermissiveDefault:
    def test_no_regions_no_enforcement(self):
        def setup(emu):
            emu.set_register("%o0", 0x9999000)
        emu = run("ld [%o0],%o1\nst %o1,[%o0+4]\nretl\nnop",
                  setup=setup)
        assert emu.register("%o1") == 0


class TestStrictRegions:
    def test_in_region_access_allowed(self):
        def setup(emu):
            emu.add_region(0x2000, 16, writable=True)
            emu.set_register("%o0", 0x2000)
            emu.write_words(0x2000, [11, 22, 33, 44])
        emu = run("ld [%o0+12],%o1\nst %o1,[%o0]\nretl\nnop",
                  setup=setup)
        assert emu.register("%o1") == 44
        assert emu.read_words(0x2000, 1) == [44]

    @pytest.mark.parametrize("op,offset,size,kind", [
        ("ld [%o0+16],%o1", 16, 4, "load"),
        ("ldsh [%o0+16],%o1", 16, 2, "load"),
        ("ldub [%o0+16],%o1", 16, 1, "load"),
        ("st %o1,[%o0+16]", 16, 4, "store"),
        ("sth %o1,[%o0+16]", 16, 2, "store"),
        ("stb %o1,[%o0+16]", 16, 1, "store"),
    ])
    def test_oob_access_raises_precisely(self, op, offset, size, kind):
        def setup(emu):
            emu.add_region(0x2000, 16)
            emu.set_register("%o0", 0x2000)
        with pytest.raises(RegionViolation) as info:
            run(op + "\nretl\nnop", setup=setup)
        violation = info.value
        assert violation.address == 0x2000 + offset
        assert violation.size == size
        assert violation.kind == kind
        assert violation.index == 1
        assert "0x2010" in str(violation)
        assert "instruction 1" in str(violation)

    def test_register_indexed_oob(self):
        def setup(emu):
            emu.add_region(0x2000, 16)
            emu.set_register("%o0", 0x2000)
            emu.set_register("%o1", 5)      # element 5 of 4
        with pytest.raises(RegionViolation) as info:
            run("sll %o1,2,%g1\nld [%o0+%g1],%o2\nretl\nnop",
                setup=setup)
        assert info.value.address == 0x2000 + 20
        assert info.value.index == 2

    def test_straddling_access_rejected(self):
        def setup(emu):
            emu.add_region(0x2000, 6)
            emu.set_register("%o0", 0x2000)
        with pytest.raises(RegionViolation):
            run("ld [%o0+4],%o1\nretl\nnop", setup=setup)

    def test_read_only_region_blocks_stores(self):
        def setup(emu):
            emu.add_region(0x2000, 16, writable=False)
            emu.set_register("%o0", 0x2000)
        run("ld [%o0],%o1\nretl\nnop", setup=setup)   # loads fine
        with pytest.raises(RegionViolation) as info:
            run("st %o1,[%o0+4]\nretl\nnop", setup=setup)
        assert info.value.kind == "store"
        assert info.value.address == 0x2004

    def test_multiple_regions(self):
        def setup(emu):
            emu.add_region(0x2000, 8)
            emu.add_region(0x3000, 8)
            emu.set_register("%o0", 0x2000)
            emu.set_register("%o1", 0x3000)
        emu = run("ld [%o0],%o2\nst %o2,[%o1+4]\nretl\nnop",
                  setup=setup)
        assert emu is not None
        with pytest.raises(RegionViolation):
            run("ld [%o0+8],%o2\nretl\nnop", setup=setup)

    def test_memory_check_hook_observes(self):
        seen = []

        def setup(emu):
            emu.add_region(0x2000, 16)
            emu.set_register("%o0", 0x2000)
            emu.memory_check = lambda *args: seen.append(args)
        run("ld [%o0],%o1\nst %o1,[%o0+8]\nretl\nnop", setup=setup)
        assert seen == [(0x2000, 4, "load", 1),
                        (0x2008, 4, "store", 2)]

    def test_delay_slot_access_still_checked(self):
        """An access sitting in a branch delay slot is checked like
        any other."""
        def setup(emu):
            emu.add_region(0x2000, 16)
            emu.set_register("%o0", 0x2000)
        with pytest.raises(RegionViolation) as info:
            run("ba L1\nld [%o0+16],%o1\nL1:\nretl\nnop", setup=setup)
        assert info.value.index == 2
