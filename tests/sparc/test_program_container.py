"""Program-container behaviors: labels, listings, statistics."""

import pytest

from repro.sparc import assemble
from repro.sparc.program import Program


class TestLabels:
    SOURCE = """
    entry: clr %o0
    loop:  inc %o0
           cmp %o0,%o1
           bl loop
           nop
           retl
           nop
    """

    def test_label_index_lookup(self):
        program = assemble(self.SOURCE)
        assert program.label_index("entry") == 1
        assert program.label_index("loop") == 2

    def test_label_at_reverse_lookup(self):
        program = assemble(self.SOURCE)
        assert program.label_at(2) in ("loop",)
        assert program.label_at(3) is None

    def test_missing_label_raises(self):
        program = assemble(self.SOURCE)
        with pytest.raises(KeyError):
            program.label_index("nowhere")


class TestListing:
    def test_listing_includes_labels(self):
        program = assemble(TestLabels.SOURCE)
        listing = program.listing()
        assert "entry:" in listing and "loop:" in listing

    def test_numeric_labels_not_rendered_as_headers(self):
        program = assemble("1: clr %o0\n2: retl\n3: nop")
        listing = program.listing()
        assert "1:" in listing          # as the index column
        assert not any(line.strip() == "1:"
                       for line in listing.splitlines())

    def test_canonical_vs_source_rendering(self):
        program = assemble("mov %o0,%o2\nretl\nnop")
        assert "mov %o0,%o2" in program.listing()
        assert "or %g0, %o0, %o2" in program.listing(canonical=True)


class TestStatistics:
    def test_counts_exclude_unconditional_branches(self):
        program = assemble("""
        cmp %o0,%o1
        bl 5
        nop
        ba 1
        nop
        retl
        nop
        """)
        counts = program.counts()
        assert counts["branches"] == 1
        assert counts["calls"] == 0

    def test_call_target_indices_deduplicated(self):
        program = assemble("""
        call f
        nop
        call f
        nop
        retl
        nop
        f: retl
        nop
        """)
        assert program.call_target_indices() == [7]

    def test_iteration_and_len(self):
        program = assemble("retl\nnop")
        assert len(program) == 2
        assert [inst.index for inst in program] == [1, 2]

    def test_repr(self):
        program = assemble("retl\nnop", name="demo")
        assert "demo" in repr(program)
