"""Per-opcode ALU oracle: every arithmetic instruction agrees with the
reference Python semantics on random operands (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.sparc import Emulator, assemble

_MASK = 0xFFFFFFFF


def _signed(value):
    value &= _MASK
    return value - 0x100000000 if value & 0x80000000 else value


def _reference(op, a, b):
    if op == "add":
        return (a + b) & _MASK
    if op == "sub":
        return (a - b) & _MASK
    if op == "and":
        return a & b & _MASK
    if op == "or":
        return (a | b) & _MASK
    if op == "xor":
        return (a ^ b) & _MASK
    if op == "andn":
        return a & ~b & _MASK
    if op == "orn":
        return (a | (~b & _MASK)) & _MASK
    if op == "xnor":
        return (~(a ^ b)) & _MASK
    if op == "umul":
        return ((a & _MASK) * (b & _MASK)) & _MASK
    if op == "smul":
        return (_signed(a) * _signed(b)) & _MASK
    if op == "sll":
        return (a << (b & 31)) & _MASK
    if op == "srl":
        return (a & _MASK) >> (b & 31)
    if op == "sra":
        return (_signed(a) >> (b & 31)) & _MASK
    raise AssertionError(op)


_OPS = ["add", "sub", "and", "or", "xor", "andn", "orn", "xnor",
        "umul", "smul", "sll", "srl", "sra"]


class TestAluAgainstOracle:
    @given(st.sampled_from(_OPS),
           st.integers(min_value=0, max_value=_MASK),
           st.integers(min_value=0, max_value=_MASK))
    @settings(max_examples=400, deadline=None)
    def test_register_form(self, op, a, b):
        program = assemble("%s %%o0,%%o1,%%o2\nretl\nnop" % op)
        emulator = Emulator(program)
        emulator.set_register("%o0", a)
        emulator.set_register("%o1", b)
        emulator.run()
        assert emulator.register("%o2") == _reference(op, a, b)

    @given(st.sampled_from(_OPS),
           st.integers(min_value=0, max_value=_MASK),
           st.integers(min_value=0, max_value=31))
    @settings(max_examples=200, deadline=None)
    def test_immediate_form(self, op, a, imm):
        program = assemble("%s %%o0,%d,%%o2\nretl\nnop" % (op, imm))
        emulator = Emulator(program)
        emulator.set_register("%o0", a)
        emulator.run()
        assert emulator.register("%o2") == _reference(op, a, imm)


class TestConditionCodeOracle:
    @given(st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1),
           st.integers(min_value=-4096, max_value=4095))
    @settings(max_examples=300, deadline=None)
    def test_every_branch_agrees_with_comparison(self, a, b):
        outcomes = {}
        for branch, predicate in [
                ("be", a == b), ("bne", a != b),
                ("bl", a < b), ("ble", a <= b),
                ("bg", a > b), ("bge", a >= b),
                ("bgu", (a & _MASK) > (b & _MASK)),
                ("bleu", (a & _MASK) <= (b & _MASK)),
                ("bcs", (a & _MASK) < (b & _MASK)),
                ("bcc", (a & _MASK) >= (b & _MASK))]:
            program = assemble("""
            cmp %%o0,%d
            %s taken
            nop
            mov 1,%%o2
            taken: retl
            nop
            """ % (b, branch))
            emulator = Emulator(program)
            emulator.set_register("%o0", a)
            emulator.run()
            took_branch = emulator.register("%o2") == 0
            assert took_branch == predicate, (branch, a, b)
