"""Concrete-emulator tests: arithmetic, condition codes, delay slots,
memory, register windows, host calls."""

import pytest

from repro.errors import EmulationError
from repro.sparc import Emulator, assemble


def run(source, setup=None, host=None, max_steps=100000):
    program = assemble(source)
    emulator = Emulator(program, host_functions=host,
                        max_steps=max_steps)
    if setup:
        setup(emulator)
    emulator.run()
    return emulator


class TestArithmetic:
    def test_add_sub(self):
        emu = run("mov 30,%o0\nadd %o0,12,%o0\nsub %o0,2,%o0\nretl\nnop")
        assert emu.register_signed("%o0") == 40

    def test_32bit_wraparound(self):
        emu = run("""
        set 0x7fffffff,%o0
        add %o0,1,%o0
        retl
        nop
        """)
        assert emu.register("%o0") == 0x80000000
        assert emu.register_signed("%o0") == -(1 << 31)

    def test_logical_ops(self):
        emu = run("""
        mov 0xcc,%o0
        mov 0xaa,%o1
        and %o0,%o1,%o2
        or  %o0,%o1,%o3
        xor %o0,%o1,%o4
        andn %o0,%o1,%o5
        retl
        nop
        """)
        assert emu.register("%o2") == 0xCC & 0xAA
        assert emu.register("%o3") == 0xCC | 0xAA
        assert emu.register("%o4") == 0xCC ^ 0xAA
        assert emu.register("%o5") == 0xCC & ~0xAA & 0xFFFFFFFF

    def test_shifts(self):
        emu = run("""
        mov -8,%o0
        sll %o0,1,%o1
        srl %o0,1,%o2
        sra %o0,1,%o3
        retl
        nop
        """)
        assert emu.register_signed("%o1") == -16
        assert emu.register("%o2") == ((-8) & 0xFFFFFFFF) >> 1
        assert emu.register_signed("%o3") == -4

    def test_multiply(self):
        emu = run("mov 7,%o0\nsmul %o0,-6,%o1\nretl\nnop")
        assert emu.register_signed("%o1") == -42

    def test_division_by_zero_traps(self):
        with pytest.raises(EmulationError):
            run("mov 1,%o0\nclr %o1\nudiv %o0,%o1,%o2\nretl\nnop")

    def test_g0_discards_writes(self):
        emu = run("mov 99,%g0\nmov %g0,%o0\nretl\nnop")
        assert emu.register("%o0") == 0


class TestConditionCodes:
    def test_signed_branches(self):
        emu = run("""
        mov -1,%o0
        cmp %o0,1
        bl skip
        nop
        mov 111,%o1     ! skipped when branch taken
        skip: mov 42,%o2
        retl
        nop
        """)
        assert emu.register("%o2") == 42
        assert emu.register("%o1") == 0

    def test_unsigned_branch_sees_negative_as_large(self):
        # -1 unsigned is 0xffffffff > 1, so bgu is taken.
        emu = run("""
        mov -1,%o0
        cmp %o0,1
        bgu out
        nop
        mov 1,%o3
        out: retl
        mov 7,%o4
        """)
        assert emu.register("%o3") == 0
        assert emu.register("%o4") == 7

    def test_overflow_flag(self):
        emu = run("""
        set 0x7fffffff,%o0
        addcc %o0,1,%o1
        bvs over
        nop
        mov 1,%o2       ! skipped: overflow set
        over: mov 9,%o3
        retl
        nop
        """)
        assert emu.register("%o3") == 9 and emu.register("%o2") == 0


class TestDelaySlots:
    def test_taken_branch_executes_slot(self):
        emu = run("""
        cmp %g0,%g0
        be 4
        mov 5,%o0       ! delay slot: executes
        retl
        nop
        """)
        assert emu.register("%o0") == 5

    def test_untaken_branch_executes_slot(self):
        emu = run("""
        cmp %g0,%g0
        bne 5
        mov 5,%o0       ! still executes
        retl
        nop
        nop
        """)
        assert emu.register("%o0") == 5

    def test_annulled_untaken_skips_slot(self):
        emu = run("""
        cmp %g0,%g0
        bne,a 5
        mov 5,%o0       ! annulled: skipped
        retl
        nop
        nop
        """)
        assert emu.register("%o0") == 0

    def test_ba_annulled_always_skips_slot(self):
        emu = run("""
        ba,a 3
        mov 5,%o0
        retl
        nop
        """)
        assert emu.register("%o0") == 0

    def test_retl_slot_executes(self):
        emu = run("retl\nmov 3,%o0")
        assert emu.register("%o0") == 3


class TestMemory:
    def test_word_roundtrip_and_endianness(self):
        def setup(emu):
            emu.set_register("%o0", 0x1000)
        emu = run("""
        set 0x12345678,%o1
        st %o1,[%o0]
        ldub [%o0],%o2
        ld [%o0],%o3
        retl
        nop
        """, setup=setup)
        assert emu.register("%o2") == 0x12  # big-endian: MSB first
        assert emu.register("%o3") == 0x12345678

    def test_signed_byte_load(self):
        def setup(emu):
            emu.set_register("%o0", 0x1000)
            emu.write_memory(0x1000, 0xFF, 1)
        emu = run("ldsb [%o0],%o1\nldub [%o0],%o2\nretl\nnop",
                  setup=setup)
        assert emu.register_signed("%o1") == -1
        assert emu.register("%o2") == 0xFF

    def test_halfword(self):
        def setup(emu):
            emu.set_register("%o0", 0x1000)
        emu = run("""
        set 0x8001,%o1
        sth %o1,[%o0]
        lduh [%o0],%o2
        ldsh [%o0],%o3
        retl
        nop
        """, setup=setup)
        assert emu.register("%o2") == 0x8001
        assert emu.register_signed("%o3") == -32767

    def test_misaligned_word_access_traps(self):
        def setup(emu):
            emu.set_register("%o0", 0x1001)
        with pytest.raises(EmulationError):
            run("ld [%o0],%o1\nretl\nnop", setup=setup)

    def test_cstring_helper(self):
        program = assemble("retl\nnop")
        emu = Emulator(program)
        emu.write_bytes(0x2000, b"hello\0")
        assert emu.read_cstring(0x2000) == b"hello"


class TestCallsAndWindows:
    def test_internal_call_and_return(self):
        emu = run("""
        mov %o7,%g4        ! leaf-call idiom: preserve the return address
        call double
        mov 21,%o0
        mov %g4,%o7
        retl
        nop
        double:
        retl
        add %o0,%o0,%o0
        """)
        assert emu.register_signed("%o0") == 42

    def test_save_restore_window_overlap(self):
        emu = run("""
        mov 7,%o0
        save %sp,-96,%sp
        add %i0,1,%i0      ! callee sees caller %o0 as %i0
        restore %i0,0,%o0  ! result flows back through the restore
        retl
        nop
        """)
        assert emu.register_signed("%o0") == 8

    def test_window_underflow_traps(self):
        with pytest.raises(EmulationError):
            run("restore\nretl\nnop")

    def test_host_function_dispatch(self):
        calls = []
        emu = run("""
        mov %o7,%g4
        call hostfn
        mov 5,%o0
        mov %g4,%o7
        retl
        nop
        """, host={"hostfn": lambda e: calls.append(
            e.register_signed("%o0")) or e.set_register("%o0", 10)})
        assert calls == [5]
        assert emu.register_signed("%o0") == 10

    def test_unregistered_external_call_traps(self):
        with pytest.raises(EmulationError):
            run("call nowhere\nnop\nretl\nnop")

    def test_step_limit(self):
        with pytest.raises(EmulationError):
            run("ba 1\nnop\nretl\nnop", max_steps=50)
