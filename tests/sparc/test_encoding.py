"""Encoder/decoder tests: exact V8 bit patterns and round-trips,
including a hypothesis property test over randomly generated
instructions."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import EncodingError
from repro.sparc import (
    assemble, decode_instruction, decode_program, encode_instruction,
    encode_program, encode_words,
)
from repro.sparc.isa import Imm, Instruction, Kind, Mem, Reg, Target


def enc(text):
    program = assemble(text)
    return encode_words(program)


class TestKnownEncodings:
    """Bit patterns checked against the SPARC V8 manual."""

    def test_add_registers(self):
        # add %o0, %o1, %o2: op=2 rd=10 op3=0 rs1=8 i=0 rs2=9
        word = enc("add %o0,%o1,%o2")[0]
        assert word == (2 << 30) | (10 << 25) | (0 << 19) | (8 << 14) | 9

    def test_add_immediate(self):
        word = enc("add %o0,42,%o2")[0]
        assert word & (1 << 13)
        assert word & 0x1FFF == 42

    def test_negative_immediate_sign_bits(self):
        word = enc("add %sp,-96,%sp")[0]
        assert word & 0x1FFF == (-96) & 0x1FFF

    def test_sethi(self):
        word = enc("sethi %hi(0x12345400),%g1")[0]
        assert word >> 30 == 0
        assert (word >> 22) & 0b111 == 0b100
        assert word & 0x3FFFFF == 0x12345400 >> 10

    def test_nop_is_canonical(self):
        # The architectural nop is sethi 0, %g0 = 0x01000000.
        assert enc("nop")[0] == 0x01000000

    def test_branch_displacement(self):
        words = enc("cmp %o0,%o1\nbge 4\nnop\nretl\nnop")
        bge = words[1]
        assert bge >> 30 == 0
        assert (bge >> 22) & 0b111 == 0b010
        assert bge & 0x3FFFFF == 2  # forward two instructions

    def test_backward_branch_negative_displacement(self):
        words = enc("nop\nnop\nba 1\nnop")
        disp = words[2] & 0x3FFFFF
        assert disp == (-2) & 0x3FFFFF

    def test_annul_bit(self):
        plain = enc("ba 1")[0]
        annulled = enc("ba,a 1")[0]
        assert annulled == plain | (1 << 29)

    def test_call_displacement(self):
        words = enc("call 3\nnop\nretl\nnop")
        assert words[0] >> 30 == 1
        assert words[0] & 0x3FFFFFFF == 2

    def test_load_store_op3(self):
        ld = enc("ld [%o2+%g2],%g2")[0]
        assert ld >> 30 == 3
        assert (ld >> 19) & 0x3F == 0
        st = enc("st %g1,[%o5+4]")[0]
        assert (st >> 19) & 0x3F == 0b000100

    def test_external_call_not_encodable(self):
        program = assemble("call hostfn\nnop\nretl\nnop")
        with pytest.raises(EncodingError):
            encode_program(program)


class TestRoundTrip:
    def test_figure1_program_roundtrip(self):
        source = """
        1: mov %o0,%o2
        2: clr %o0
        3: cmp %o0,%o1
        4: bge 12
        5: clr %g3
        6: sll %g3, 2,%g2
        7: ld [%o2+%g2],%g2
        8: inc %g3
        9: cmp %g3,%o1
        10:bl 6
        11:add %o0,%g2,%o0
        12:retl
        13:nop
        """
        program = assemble(source)
        blob = encode_program(program)
        decoded = decode_program(blob)
        assert len(decoded) == len(program)
        for original, recovered in zip(program, decoded):
            assert recovered.op == original.op
            assert recovered.kind == original.kind
            if original.target is not None:
                assert recovered.target.index == original.target.index

    def test_decoding_words_equals_decoding_bytes(self):
        program = assemble("add %o0,%o1,%o2\nretl\nnop")
        words = encode_words(program)
        blob = encode_program(program)
        a = decode_program(words)
        b = decode_program(blob)
        assert [i.op for i in a] == [i.op for i in b]

    def test_misaligned_blob_rejected(self):
        from repro.errors import DecodingError
        with pytest.raises(DecodingError):
            decode_program(b"\x01\x02\x03")


_REG = st.integers(min_value=0, max_value=31).map(Reg)
_SIMM = st.integers(min_value=-4096, max_value=4095).map(Imm)
_ALU_OPS = st.sampled_from([
    "add", "sub", "and", "or", "xor", "andn", "orn", "xnor",
    "addcc", "subcc", "andcc", "orcc", "xorcc",
    "sll", "srl", "sra", "umul", "smul",
])
_MEM_LOAD = st.sampled_from(["ld", "ldub", "ldsb", "lduh", "ldsh"])
_MEM_STORE = st.sampled_from(["st", "stb", "sth"])


@st.composite
def _instructions(draw):
    choice = draw(st.integers(min_value=0, max_value=3))
    if choice == 0:
        return Instruction(op=draw(_ALU_OPS), kind=Kind.ALU,
                           rs1=draw(_REG),
                           op2=draw(st.one_of(_REG, _SIMM)),
                           rd=draw(_REG), index=5)
    if choice == 1:
        base = draw(_REG)
        if draw(st.booleans()):
            mem = Mem(base=base,
                      offset=draw(st.integers(-4096, 4095)))
        else:
            index = draw(_REG)
            if index.number == 0:
                mem = Mem(base=base, offset=0)
            else:
                mem = Mem(base=base, index=index)
        return Instruction(op=draw(_MEM_LOAD), kind=Kind.LOAD, mem=mem,
                           rd=draw(_REG), index=5)
    if choice == 2:
        return Instruction(
            op=draw(st.sampled_from(["ba", "be", "bne", "bl", "ble",
                                     "bg", "bge", "bgu", "bleu"])),
            kind=Kind.BRANCH, annul=draw(st.booleans()),
            target=Target(index=draw(st.integers(1, 9))), index=5)
    return Instruction(op="sethi", kind=Kind.SETHI,
                       op2=Imm(draw(st.integers(0, (1 << 22) - 1)) << 10),
                       rd=draw(_REG), index=5)


class TestEncodeDecodeProperty:
    @given(_instructions())
    @settings(max_examples=300, deadline=None)
    def test_decode_inverts_encode(self, inst):
        word = encode_instruction(inst)
        recovered = decode_instruction(word, index=inst.index)
        assert recovered.op == inst.op
        assert recovered.kind == inst.kind
        if inst.kind is Kind.BRANCH:
            assert recovered.annul == inst.annul
            assert recovered.target.index == inst.target.index
        if inst.rd is not None:
            assert recovered.rd == inst.rd
        if inst.kind is Kind.ALU:
            assert recovered.rs1 == inst.rs1
            assert recovered.op2 == inst.op2
        if inst.mem is not None:
            assert recovered.mem == inst.mem
