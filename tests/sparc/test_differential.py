"""Differential fuzzing across the SPARC substrate.

Random straight-line programs are (a) emulated directly and (b) pushed
through encode → decode and emulated again; both executions must agree
on every register.  This cross-checks the assembler, encoder, decoder,
and emulator against each other — the property that makes "the checker
operates on binary code" trustworthy.
"""

from hypothesis import given, settings, strategies as st

from repro.sparc import Emulator, assemble, decode_program, encode_program

_SAFE_REGS = ["%o0", "%o1", "%o2", "%o3", "%g1", "%g2", "%g3", "%l0"]

_ALU = st.sampled_from(["add", "sub", "and", "or", "xor", "andn",
                        "sll", "srl", "sra", "smul"])


@st.composite
def _straightline(draw):
    lines = []
    count = draw(st.integers(min_value=1, max_value=12))
    for __ in range(count):
        op = draw(_ALU)
        rs1 = draw(st.sampled_from(_SAFE_REGS))
        rd = draw(st.sampled_from(_SAFE_REGS))
        if draw(st.booleans()):
            if op in ("sll", "srl", "sra"):
                imm = draw(st.integers(min_value=0, max_value=31))
            else:
                imm = draw(st.integers(min_value=-4096, max_value=4095))
            lines.append("%s %s,%d,%s" % (op, rs1, imm, rd))
        else:
            rs2 = draw(st.sampled_from(_SAFE_REGS))
            lines.append("%s %s,%s,%s" % (op, rs1, rs2, rd))
    lines.append("retl")
    lines.append("nop")
    return "\n".join(lines)


def _run(program, seeds):
    emulator = Emulator(program)
    for reg, value in seeds.items():
        emulator.set_register(reg, value)
    emulator.run()
    return {reg: emulator.register(reg) for reg in _SAFE_REGS}


_SEEDS = st.fixed_dictionaries({
    reg: st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1)
    for reg in _SAFE_REGS
})


class TestEncodeDecodeEmulateAgree:
    @given(_straightline(), _SEEDS)
    @settings(max_examples=200, deadline=None)
    def test_binary_roundtrip_preserves_behaviour(self, source, seeds):
        original = assemble(source)
        recovered = decode_program(encode_program(original))
        assert _run(original, seeds) == _run(recovered, seeds)

    @given(_straightline())
    @settings(max_examples=100, deadline=None)
    def test_listing_reassembles_identically(self, source):
        original = assemble(source)
        relisted = assemble(original.listing(canonical=True))
        assert encode_program(original) == encode_program(relisted)


class TestBranchRoundtrip:
    @given(st.sampled_from(["be", "bne", "bl", "ble", "bg", "bge",
                            "bgu", "bleu"]),
           st.integers(min_value=-100, max_value=100),
           st.integers(min_value=-100, max_value=100))
    @settings(max_examples=150, deadline=None)
    def test_branch_outcome_survives_roundtrip(self, branch, a, b):
        source = """
        set %d,%%o0
        set %d,%%o1
        cmp %%o0,%%o1
        %s taken
        nop
        mov 1,%%o2
        taken: retl
        nop
        """ % (a, b, branch)
        original = assemble(source)
        recovered = decode_program(encode_program(original))
        assert _run(original, {})["%o2"] == _run(recovered, {})["%o2"]
