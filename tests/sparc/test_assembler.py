"""Assembler tests: syntax, synthetic expansion, labels, errors."""

import pytest

from repro.errors import AssemblyError
from repro.sparc import assemble
from repro.sparc.isa import Imm, Kind, Mem, Reg, Target


def one(text):
    program = assemble(text)
    assert len(program) == 1
    return program.instruction(1)


class TestBasicParsing:
    def test_add_registers(self):
        inst = one("add %o0,%o1,%o2")
        assert inst.op == "add" and inst.kind is Kind.ALU
        assert inst.rs1.name == "%o0"
        assert inst.op2 == Reg(9)
        assert inst.rd.name == "%o2"

    def test_add_immediate(self):
        inst = one("add %o0, 42, %o2")
        assert inst.op2 == Imm(42)

    def test_negative_immediate(self):
        inst = one("add %sp, -96, %sp")
        assert inst.op2 == Imm(-96)
        assert inst.rd.name == "%o6"  # %sp alias

    def test_hex_immediate(self):
        inst = one("or %g0, 0x1f, %o0")
        assert inst.op2 == Imm(0x1F)

    def test_comment_stripping(self):
        inst = one("add %o0,%o1,%o2 ! trailing comment")
        assert inst.op == "add"

    def test_whitespace_tolerance(self):
        inst = one("  add   %o0 , %o1 , %o2  ")
        assert inst.op == "add"

    def test_immediate_too_large_rejected(self):
        with pytest.raises(AssemblyError):
            one("add %o0, 5000, %o1")

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(AssemblyError):
            one("frobnicate %o0")

    def test_unknown_register_rejected(self):
        with pytest.raises(AssemblyError):
            one("add %q9,%o0,%o0")


class TestMemoryOperands:
    def test_load_base_index(self):
        inst = one("ld [%o2+%g2],%g2")
        assert inst.kind is Kind.LOAD
        assert inst.mem == Mem(base=Reg(10), index=Reg(2))
        assert inst.rd == Reg(2)

    def test_load_base_offset(self):
        inst = one("ld [%o5+8],%g1")
        assert inst.mem.offset == 8 and inst.mem.index is None

    def test_load_negative_offset(self):
        inst = one("ld [%fp-12],%g1")
        assert inst.mem.offset == -12

    def test_load_bare_base(self):
        inst = one("ld [%o3],%g1")
        assert inst.mem.offset == 0 and inst.mem.index is None

    def test_store(self):
        inst = one("st %g1,[%o5+4]")
        assert inst.kind is Kind.STORE
        assert inst.rs1 == Reg(1)
        assert inst.mem.offset == 4

    def test_byte_and_half_ops(self):
        assert one("ldub [%o0],%g1").op == "ldub"
        assert one("ldsb [%o0],%g1").op == "ldsb"
        assert one("lduh [%o0],%g1").op == "lduh"
        assert one("stb %g1,[%o0]").op == "stb"
        assert one("sth %g1,[%o0]").op == "sth"


class TestSyntheticInstructions:
    def test_mov_expands_to_or(self):
        inst = one("mov %o0,%o2")
        assert inst.op == "or" and inst.rs1.name == "%g0"
        assert inst.source_mnemonic == "mov"

    def test_mov_immediate(self):
        inst = one("mov 5,%o2")
        assert inst.op2 == Imm(5)

    def test_clr_register(self):
        inst = one("clr %g3")
        assert inst.op == "or"
        assert inst.rs1.name == "%g0" and inst.op2 == Reg(0)

    def test_clr_memory(self):
        inst = one("clr [%o0+4]")
        assert inst.kind is Kind.STORE and inst.rs1.name == "%g0"

    def test_cmp_expands_to_subcc(self):
        inst = one("cmp %o0,%o1")
        assert inst.op == "subcc" and inst.rd.name == "%g0"
        assert inst.sets_cc

    def test_tst(self):
        inst = one("tst %o3")
        assert inst.op == "orcc" and inst.sets_cc

    def test_inc_dec(self):
        assert one("inc %g3").op == "add"
        assert one("inc %g3").op2 == Imm(1)
        assert one("inc 4,%g3").op2 == Imm(4)
        assert one("dec %o2").op == "sub"

    def test_neg_and_not(self):
        assert one("neg %o1").op == "sub"
        assert one("not %o1").op == "xnor"

    def test_set_small_fits_one_instruction(self):
        inst = one("set 100,%l0")
        assert inst.op == "or" and inst.op2 == Imm(100)

    def test_set_large_expands_to_sethi_or(self):
        program = assemble("set 0x12345678,%l0")
        assert len(program) == 2
        assert program.instruction(1).op == "sethi"
        assert program.instruction(2).op == "or"

    def test_set_page_aligned_needs_only_sethi(self):
        program = assemble("set 0x10000,%l0")
        assert len(program) == 1
        assert program.instruction(1).op == "sethi"

    def test_retl(self):
        inst = one("retl")
        assert inst.kind is Kind.JMPL and inst.is_return
        assert inst.rs1.name == "%o7"

    def test_ret_uses_i7(self):
        inst = one("ret")
        assert inst.rs1.name == "%i7" and inst.is_return

    def test_nop_is_sethi_zero(self):
        inst = one("nop")
        assert inst.kind is Kind.SETHI and inst.rd.name == "%g0"

    def test_bare_restore(self):
        inst = one("restore")
        assert inst.kind is Kind.RESTORE


class TestControlFlow:
    def test_numeric_branch_target(self):
        program = assemble("cmp %o0,%o1\nbge 3\nnop\nretl\nnop")
        branch = program.instruction(2)
        assert branch.kind is Kind.BRANCH and branch.target.index == 3

    def test_label_branch_target(self):
        program = assemble("""
        loop: inc %g1
              cmp %g1,%o0
              bl loop
              nop
              retl
              nop
        """)
        assert program.instruction(3).target.index == 1

    def test_paper_style_line_numbers(self):
        program = assemble("1: clr %o0\n2: retl\n3: nop")
        assert len(program) == 3
        assert program.labels["1"] == 1

    def test_annulled_branch(self):
        program = assemble("ba,a 1")
        assert program.instruction(1).annul

    def test_branch_synonyms(self):
        assert assemble("b 1").instruction(1).op == "ba"
        assert assemble("bz 1").instruction(1).op == "be"
        assert assemble("bgeu 1").instruction(1).op == "bcc"

    def test_undefined_branch_label_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("ba nowhere\nnop")

    def test_out_of_range_target_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("ba 17\nnop")

    def test_external_call_gets_index_zero(self):
        program = assemble("call somehostfn\nnop\nretl\nnop")
        call = program.instruction(1)
        assert call.kind is Kind.CALL
        assert call.target.index == 0
        assert call.target.label == "somehostfn"

    def test_internal_call_resolves(self):
        program = assemble("""
        call helper
        nop
        retl
        nop
        helper: retl
        nop
        """)
        assert program.instruction(1).target.index == 5

    def test_directives_ignored(self):
        program = assemble(".text\n.align 4\nretl\nnop")
        assert len(program) == 2


class TestProgramContainer:
    def test_listing_roundtrips_mnemonics(self):
        program = assemble("1: mov %o0,%o2\n2: retl\n3: nop")
        listing = program.listing()
        assert "mov %o0,%o2" in listing

    def test_counts(self):
        program = assemble("""
        cmp %o0,%o1
        bge 6
        nop
        ba 1
        nop
        retl
        nop
        """)
        counts = program.counts()
        assert counts["instructions"] == 7
        assert counts["branches"] == 1  # ba is unconditional

    def test_instruction_index_bounds(self):
        program = assemble("retl\nnop")
        with pytest.raises(IndexError):
            program.instruction(3)
        with pytest.raises(IndexError):
            program.instruction(0)
