"""Object-file container tests: round-trips (including external calls
and label tables) and malformed-input rejection."""

import pytest

from repro.errors import DecodingError
from repro.sparc import assemble, read_object, write_object
from repro.sparc.isa import Kind


class TestRoundTrip:
    def test_plain_program(self):
        program = assemble("add %o0,%o1,%o2\nretl\nnop")
        recovered = read_object(write_object(program))
        assert [i.op for i in recovered] == [i.op for i in program]

    def test_external_calls_preserved(self):
        program = assemble("""
        mov %o7,%g4
        call getTime
        nop
        mov %g4,%o7
        retl
        nop
        """)
        recovered = read_object(write_object(program))
        call = recovered.instruction(2)
        assert call.kind is Kind.CALL
        assert call.target.index == 0
        assert call.target.label == "getTime"

    def test_internal_labels_preserved(self):
        program = assemble("""
        call helper
        nop
        retl
        nop
        helper:
        retl
        add %o0,1,%o0
        """)
        recovered = read_object(write_object(program))
        assert recovered.labels["helper"] == 5
        assert recovered.instruction(1).target.index == 5

    def test_jpvm_program_roundtrips_and_checks(self):
        from repro.analysis.checker import SafetyChecker
        from repro.programs.jpvm import PROGRAM
        original = PROGRAM.program()
        recovered = read_object(write_object(original), name="jpvm")
        assert len(recovered) == len(original)
        result = SafetyChecker(recovered, PROGRAM.spec()).check()
        # Same verdict as checking the source (the known false alarm).
        assert not result.safe
        assert result.violated_instructions() \
            == list(PROGRAM.expected_violation_indices)

    def test_all_benchmark_programs_roundtrip(self):
        from repro.programs import all_programs
        for benchmark in all_programs():
            program = benchmark.program()
            recovered = read_object(write_object(program))
            assert len(recovered) == len(program), benchmark.name
            for a, b in zip(program, recovered):
                assert a.op == b.op, benchmark.name


class TestMalformedObjects:
    def _blob(self):
        return write_object(assemble("retl\nnop"))

    def test_bad_magic(self):
        blob = b"XXXX" + self._blob()[4:]
        with pytest.raises(DecodingError):
            read_object(blob)

    def test_bad_version(self):
        blob = bytearray(self._blob())
        blob[5] = 99
        with pytest.raises(DecodingError):
            read_object(bytes(blob))

    def test_truncated(self):
        with pytest.raises(DecodingError):
            read_object(self._blob()[:-3])

    def test_trailing_garbage(self):
        with pytest.raises(DecodingError):
            read_object(self._blob() + b"\x00")

    def test_relocation_to_non_call_rejected(self):
        import struct
        program = assemble("retl\nnop")
        blob = bytearray(write_object(program))
        # Forge a relocation record pointing at the retl.
        header = struct.pack(">HIII", 1, 2, 1, 0)
        code = blob[4 + struct.calcsize(">HIII"):
                    4 + struct.calcsize(">HIII") + 8]
        reloc = struct.pack(">IH", 1, 1) + b"f"
        forged = b"RPRO" + header + bytes(code) + reloc
        with pytest.raises(DecodingError):
            read_object(forged)


class TestCliIntegration:
    def test_object_pipeline(self, tmp_path, capsys):
        from repro.cli import main
        from repro.programs.timers import START_SOURCE, _TIMER_SPEC
        code = tmp_path / "timer.s"
        code.write_text(START_SOURCE)
        spec = tmp_path / "timer.policy"
        spec.write_text(_TIMER_SPEC)
        obj = tmp_path / "timer.ro"
        assert main(["asm", str(code), "-o", str(obj)]) == 0
        capsys.readouterr()
        assert main(["disasm", str(obj)]) == 0
        assert "call" in capsys.readouterr().out
        assert main(["check", str(obj), str(spec)]) == 0
