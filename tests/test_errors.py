"""The exception hierarchy: everything derives from ReproError, and the
subsystems raise the advertised types."""

import pytest

from repro import check_assembly
from repro.errors import (
    AnalysisError, AssemblyError, CFGError, DecodingError, EmulationError,
    EncodingError, FuzzError, ProverError, RecursionRejected,
    RegionViolation, ReproError, SpecError,
)


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (AssemblyError, EncodingError, DecodingError,
                    EmulationError, CFGError, SpecError, AnalysisError,
                    RecursionRejected, ProverError, FuzzError):
            assert issubclass(exc, ReproError)

    def test_region_violation_is_emulation_error(self):
        assert issubclass(RegionViolation, EmulationError)

    def test_region_violation_carries_the_access(self):
        error = RegionViolation(0x2010, 4, "store", 7)
        assert (error.address, error.size, error.kind, error.index) \
            == (0x2010, 4, "store", 7)
        assert "store" in str(error)
        assert "0x2010" in str(error)
        assert "instruction 7" in str(error)
        assert "4 bytes" in str(error)

    def test_recursion_is_analysis_error(self):
        assert issubclass(RecursionRejected, AnalysisError)

    def test_assembly_error_carries_line(self):
        error = AssemblyError("bad", line=7)
        assert error.line == 7
        assert "line 7" in str(error)


class TestOneCatchAtTheBoundary:
    """A caller can guard the whole API with a single except clause."""

    def test_bad_assembly(self):
        with pytest.raises(ReproError):
            check_assembly("frobnicate", "invoke %o0 = x")

    def test_bad_spec(self):
        with pytest.raises(ReproError):
            check_assembly("retl\nnop", "nonsense line")

    def test_bad_binary(self):
        from repro.sparc import decode_program
        with pytest.raises(ReproError):
            decode_program(b"\x00\x00\x00")

    def test_unsupported_construct(self):
        # save/restore lie outside the analyzed subset.
        with pytest.raises(ReproError):
            check_assembly("save %sp,-96,%sp\nretl\nrestore",
                           "invoke %o0 = x")
