"""Setuptools entry point.

A classic setup.py is kept (rather than PEP 621 metadata only) so that
``pip install -e .`` works in offline environments without the ``wheel``
package, via the legacy develop-mode path.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Safety Checking of Machine Code' (Xu, Miller, "
        "Reps; PLDI 2000): a typestate + linear-constraint safety checker "
        "for SPARC machine code"
    ),
    license="MIT",
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
    entry_points={"console_scripts": ["repro=repro.cli:main"]},
)
