#!/usr/bin/env python3
"""Auditing an opaque binary: check machine code you did not assemble.

The scenario the paper opens with: a host receives an extension as
*machine code* — no source, no compiler trust — and must decide whether
to load it.  This example plays both sides:

1. the (honest) producer compiles the array-summation extension and
   ships raw SPARC V8 bytes;
2. the host disassembles the bytes for audit, runs the safety checker,
   and accepts;
3. a tampered variant — one byte changed, turning the loop's exit test
   ``bl`` into ``ble`` (a classic off-by-one) — is rejected, with the
   faulty instruction pinpointed, even though the tampering happened at
   the *binary* level.

Run:  python examples/binary_audit.py
"""

from repro import (
    SafetyChecker, assemble, decode_program, encode_program, parse_spec,
)

PRODUCER_SOURCE = """
1: mov %o0,%o2
2: clr %o0
3: cmp %o0,%o1
4: bge 12
5: clr %g3
6: sll %g3, 2,%g2
7: ld [%o2+%g2],%g2
8: inc %g3
9: cmp %g3,%o1
10:bl 6
11:add %o0,%g2,%o0
12:retl
13:nop
"""

HOST_POLICY = """
loc e   : int    = initialized  perms ro  region V summary
loc arr : int[n] = {e}          perms rfo region V
rule [V : int : ro]
rule [V : int[n] : rfo]
invoke %o0 = arr
invoke %o1 = n
assume n >= 1
"""


def producer_ships_binary() -> bytes:
    """The producer's side: compile and ship bytes."""
    return encode_program(assemble(PRODUCER_SOURCE, name="extension"))


def tamper(blob: bytes) -> bytes:
    """Flip the condition field of the loop branch (instruction 10):
    bl (cond 0011) becomes ble (cond 0010) — reads one element past the
    end."""
    words = bytearray(blob)
    index = 9 * 4  # instruction 10, zero-based byte offset
    # Bicc cond field is bits 25-28 of the big-endian word.
    words[index] = (words[index] & 0xE1) | (0b0010 << 1)
    return bytes(words)


def host_audits(blob: bytes, label: str) -> bool:
    spec = parse_spec(HOST_POLICY)
    program = decode_program(blob, name=label)
    print("--- auditing %s (%d bytes) ---" % (label, len(blob)))
    print(program.listing(canonical=True))
    result = SafetyChecker(program, spec).check()
    print(result.summary())
    print()
    return result.safe


def main() -> None:
    blob = producer_ships_binary()
    assert host_audits(blob, "extension.bin"), \
        "the honest binary must be accepted"

    tampered = tamper(blob)
    assert tampered != blob
    accepted = host_audits(tampered, "extension-tampered.bin")
    assert not accepted, "the tampered binary must be rejected"
    print("The tampered loop bound was caught at the machine-code "
          "level — no source, no compiler trust, exactly the paper's "
          "premise.")


if __name__ == "__main__":
    main()
