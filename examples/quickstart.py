#!/usr/bin/env python3
"""Quickstart: check the paper's Figure 1 example end to end.

Demonstrates the whole pipeline on the array-summation code of
"Safety Checking of Machine Code" (Xu, Miller, Reps; PLDI 2000):

1. assemble the untrusted SPARC code (or accept raw machine words);
2. parse the host's typestate/policy/invocation specification;
3. run the five-phase safety checker;
4. print the intermediate artifacts the paper's figures show.

Run:  python examples/quickstart.py
"""

from repro import SafetyChecker, assemble, encode_program, parse_spec
from repro.analysis.prepare import prepare

UNTRUSTED_CODE = """
1: mov %o0,%o2      ! move %o0 into %o2
2: clr %o0          ! set %o0 to zero
3: cmp %o0,%o1      ! compare %o0 and %o1
4: bge 12           ! branch to 12 if %o0 >= %o1
5: clr %g3          ! set %g3 to zero
6: sll %g3, 2,%g2   ! %g2 = 4 x %g3
7: ld [%o2+%g2],%g2 ! load from address %o2+%g2
8: inc %g3          ! %g3 = %g3 + 1
9: cmp %g3,%o1      ! compare %g3 and %o1
10:bl 6             ! branch to 6 if %g3 < %o1
11:add %o0,%g2,%o0  ! %o0 = %o0 + %g2
12:retl
13:nop
"""

HOST_SPECIFICATION = """
# arr is an integer array of size n (n >= 1); e summarizes its elements.
loc e   : int    = initialized  perms ro  region V summary
loc arr : int[n] = {e}          perms rfo region V
rule [V : int : ro]
rule [V : int[n] : rfo]
invoke %o0 = arr
invoke %o1 = n
assume n >= 1
"""


def main() -> None:
    program = assemble(UNTRUSTED_CODE, name="sum")
    spec = parse_spec(HOST_SPECIFICATION)

    print("=" * 64)
    print("Untrusted code (canonical disassembly):")
    print(program.listing(canonical=True))

    # The checker genuinely operates on machine code: encode to SPARC V8
    # words and hand the *binary* to the checker.
    machine_code = encode_program(program)
    print("\nEncoded to %d bytes of SPARC V8 machine code." %
          len(machine_code))

    print("\n" + "=" * 64)
    print("Phase 1 initial annotations (paper Figure 2):")
    print(prepare(spec).render_figure2())

    checker = SafetyChecker(machine_code, spec, name="sum")
    result = checker.check()

    print("\n" + "=" * 64)
    print("Annotation of the array access at line 7 (paper Figure 3):")
    line7 = next(a for a in result.annotations.values() if a.index == 7)
    print(line7.render_figure3())

    print("\n" + "=" * 64)
    print("Verdict:")
    print(result.summary())
    print("\nPer-condition proof outcomes:")
    for proof in result.proofs:
        print("  line %-3d %-40s %s" % (
            proof.index, proof.predicate.description,
            "PROVED" if proof.proved else "FAILED"))
    assert result.safe, "the paper's example must verify"


if __name__ == "__main__":
    main()
