#!/usr/bin/env python3
"""Policy exploration: the same untrusted code under different host
policies.

The paper's central point (Section 2): the safety policy is decoupled
from the code.  One piece of untrusted code — a thread-list walker that
reads ``tid``/``lwpid`` and follows ``next`` — is checked here under
four policies of increasing permissiveness:

1. *sandbox*    — no host region access at all: every load is rejected;
2. *read-only*  — fields readable but pointers not followable: the
                  ``next`` traversal is rejected;
3. *traversal*  — the paper's example policy ([H: thread.tid,
                  thread.lwpid: ro], [H: thread.next: rfo]): verifies;
4. *mutation*   — additionally lets the extension overwrite ``lwpid``:
                  a writing variant verifies only under this policy.

Run:  python examples/policy_exploration.py
"""

from repro import check_assembly

# Find the lwpid of the thread with a given tid (returns 0 if absent).
WALKER = """
 1: mov %o1,%g2      ! g2 = wanted tid
 2: mov %o0,%o3      ! p = thread list head
 3: cmp %o3,0        ! while p != NULL
 4: be 15
 5: nop
 6: ld [%o3],%g1     ! p->tid
 7: cmp %g1,%g2
 8: be 13            ! found it
 9: nop
10: ba 3
11: ld [%o3+8],%o3   ! (delay slot) p = p->next
12: nop
13: retl
14: ld [%o3+4],%o0   ! (delay slot) return p->lwpid
15: retl
16: clr %o0          ! not found
"""

# A variant that also *writes* the lwpid field (rebinds the thread).
REBINDER = WALKER.replace("14: ld [%o3+4],%o0   ! (delay slot) return p->lwpid",
                          "14: st %o2,[%o3+4]   ! (delay slot) p->lwpid = new")

_BASE = """
type thread = struct { tid: int; lwpid: int; next: thread ptr }
loc th   : thread            perms r   region H summary
loc head : thread ptr = {th} perms rfo region H
invoke %o0 = head
invoke %o1 = tid
invoke %o2 = newlwp
"""

POLICIES = {
    "sandbox": _BASE + """
# No access rules at all: the host region is off limits.
""",
    "read-only": _BASE + """
rule [H : thread.tid, thread.lwpid : ro]
rule [H : thread.next : ro]
""",
    "traversal": _BASE + """
rule [H : thread.tid, thread.lwpid : ro]
rule [H : thread.next : rfo]
""",
    "mutation": _BASE.replace("perms r ", "perms rw") + """
rule [H : thread.tid : ro]
rule [H : thread.lwpid : rwo]
rule [H : thread.next : rfo]
""",
}


def main() -> None:
    print("%-12s %-12s %-12s" % ("policy", "walker", "rebinder"))
    print("-" * 38)
    outcomes = {}
    for name, spec in POLICIES.items():
        walker = check_assembly(WALKER, spec, name="walker-" + name)
        rebinder = check_assembly(REBINDER, spec,
                                  name="rebinder-" + name)
        outcomes[name] = (walker.safe, rebinder.safe)
        print("%-12s %-12s %-12s" % (
            name,
            "SAFE" if walker.safe else "rejected",
            "SAFE" if rebinder.safe else "rejected"))

    assert outcomes["sandbox"] == (False, False)
    assert outcomes["read-only"] == (False, False)   # cannot follow next
    assert outcomes["traversal"] == (True, False)    # reads ok, write not
    assert outcomes["mutation"][1] is True           # write permitted
    print("\nSame machine code, four verdicts — driven purely by the "
          "host-side policy.")


if __name__ == "__main__":
    main()
