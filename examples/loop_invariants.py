#!/usr/bin/env python3
"""Watch the induction-iteration method synthesize a loop invariant.

Replays the paper's Section 5.2.2 derivation at the logic level and
then lets the real engine do the same on the Figure 1 binary:

* W(0) = %g3 < n must hold at the loop header;
* W(1) = wlp(loop-body, W(0)) = (%g3+1 < %o1 → %g3+1 < n);
* W(0) does not imply W(1) — the chain will not close by itself;
* *generalization* (¬ eliminate ¬) discovers %o1 ≤ n;
* W(0) ∧ (%o1 ≤ n) is inductive and implies the bound.

Run:  python examples/loop_invariants.py
"""

from repro import parse_spec
from repro.analysis.annotate import annotate
from repro.analysis.prepare import prepare
from repro.analysis.propagate import propagate
from repro.analysis.verify import VerificationEngine
from repro.cfg import build_cfg, find_loops, CFG
from repro.logic import Prover, conj, implies, le, lt
from repro.logic.terms import Linear
from repro.programs.sum_array import SOURCE, SPEC
from repro.sparc import assemble


def replay_paper_derivation() -> None:
    print("Paper Section 5.2.2, replayed with the prover:")
    prover = Prover()
    g3, o1, n = Linear.var("%g3"), Linear.var("%o1"), Linear.var("n")

    w0 = lt(g3, n)
    w1 = implies(lt(g3 + 1, o1), lt(g3 + 1, n))
    print("  W(0) =", w0)
    print("  W(1) =", w1)
    print("  W(0) -> W(1) valid?", prover.implies(w0, w1))

    generalized = le(o1, n)
    print("  generalization of W(1):", generalized)
    print("  generalized -> W(1) valid?",
          prover.implies(generalized, w1))

    invariant = conj(w0, generalized)
    w2 = generalized  # %o1 and n are not modified by the loop body
    print("  L(1) = W(0) ∧ %o1<=n inductive?",
          prover.implies(invariant, w2))
    print("  L(1) -> bound at header?", prover.implies(invariant, w0))


def run_real_engine() -> None:
    print("\nThe engine on the real binary:")
    program = assemble(SOURCE, name="sum")
    spec = parse_spec(SPEC)
    preparation = prepare(spec)
    cfg = build_cfg(program)
    propagation = propagate(cfg, preparation, spec)
    annotations = annotate(cfg, propagation.inputs, spec,
                           preparation.locations)
    engine = VerificationEngine(cfg, propagation, preparation, spec)

    line7 = next(a for a in annotations.values() if a.index == 7)
    upper = next(g for g in line7.global_
                 if "upper" in g.description)
    print("  goal at line 7:", upper.formula)
    proved = engine.prove_at(line7.uid, upper.formula, {}, 0)
    print("  proved:", proved)
    print("  induction-iteration runs:", engine.induction_runs)

    forest = find_loops(cfg, CFG.MAIN)
    header_index = cfg.node(forest.loops[0].header).index
    print("  loop header: instruction", header_index)
    invariants = engine._proven_invariants.get(forest.loops[0].header,
                                               [])
    for inv in invariants:
        print("  synthesized invariant:", inv)
    assert proved


def main() -> None:
    replay_paper_derivation()
    run_real_engine()


if __name__ == "__main__":
    main()
