#!/usr/bin/env python3
"""Kernel-extension scenario: catching and fixing a null-pointer bug.

Re-creates the paper's PagingPolicy experience (Section 6): a
page-replacement extension walks the kernel's page-frame list looking
for an unreferenced page, but dereferences ``p->next`` without checking
it against NULL.  The checker pinpoints the bad loads; after the loop
is repaired to test the pointer, the same policy certifies the
extension safe.

Run:  python examples/kernel_extension.py
"""

from repro import check_assembly

SPEC = """
type page = struct { refbit: int; next: page ptr }
loc pg   : page            perms r   region H summary
loc head : page ptr = {pg} perms rfo region H
rule [H : page.refbit : ro]
rule [H : page.next : rfo]
invoke %o0 = head
invoke %o1 = passes
assume passes >= 1
"""

BUGGY = """
 1: clr %o2          ! pass = 0
 2: clr %o4          ! victims = 0
 3: cmp %o2,%o1      ! outer: while pass < passes
 4: bge 17
 5: nop
 6: mov %o0,%o3      ! p = head
 7: ld [%o3],%g1     ! p->refbit  -- BUG: p may be NULL
 8: cmp %g1,0
 9: be 13
10: nop
11: ba 7
12: ld [%o3+4],%o3   ! p = p->next (may be NULL)
13: inc %o4
14: inc %o2
15: ba 3
16: nop
17: retl
18: mov %o4,%o0
"""

# The repaired loop keeps the walk but tests the pointer on every
# iteration before dereferencing it.
FIXED_FULL = """
 1: clr %o2          ! pass = 0
 2: clr %o4          ! victims = 0
 3: cmp %o2,%o1      ! outer: while pass < passes
 4: bge 20
 5: nop
 6: mov %o0,%o3      ! p = head
 7: cmp %o3,0        ! inner: while p != NULL
 8: be 17            ! end of list: no victim this pass
 9: nop
10: ld [%o3],%g1     ! p->refbit (safe)
11: cmp %g1,0
12: be 16            ! found a victim
13: nop
14: ba 7             ! advance and retest
15: ld [%o3+4],%o3   ! (delay slot) p = p->next
16: inc %o4          ! victims++
17: inc %o2          ! pass++
18: ba 3
19: nop
20: retl
21: mov %o4,%o0
"""


def main() -> None:
    print("Checking the buggy page-replacement extension...")
    buggy = check_assembly(BUGGY, SPEC, name="paging-buggy")
    print(buggy.summary())
    assert not buggy.safe
    bad_lines = buggy.violated_instructions()
    print("\nThe checker pinpointed instruction(s) %s — the unchecked "
          "dereference(s) of p." % bad_lines)

    print("\nChecking the repaired extension...")
    fixed = check_assembly(FIXED_FULL, SPEC, name="paging-fixed")
    print(fixed.summary())
    assert fixed.safe, "the repaired extension must verify"
    print("\nSame policy, same host spec — the pointer test makes every "
          "dereference provably non-null.")


if __name__ == "__main__":
    main()
